package buildkdeg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
)

func runOn(t *testing.T, p Protocol, g *graph.Graph, adv adversary.Adversary) Decoded {
	t.Helper()
	res := engine.Run(p, g, adv, engine.Options{})
	if res.Status != core.Success {
		t.Fatalf("run on %v: %v (%v)", g, res.Status, res.Err)
	}
	return res.Output.(Decoded)
}

func TestReconstructsDegenerateFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		k int
		g *graph.Graph
	}{
		{1, graph.Path(8)},
		{1, graph.RandomTree(12, rng)},
		{2, graph.Cycle(9)},
		{2, graph.Grid(3, 4)},
		{3, graph.Complete(4)},
		{2, graph.RandomKDegenerate(14, 2, rng)},
		{3, graph.RandomKDegenerate(14, 3, rng)},
		{4, graph.RandomKDegenerate(12, 4, rng)},
		{3, graph.CompleteBipartite(3, 6)},
		{2, graph.New(5)}, // empty graph
	}
	for _, c := range cases {
		for _, adv := range adversary.Standard(1, 5) {
			d := runOn(t, Protocol{K: c.k}, c.g, adv)
			if !d.InClass {
				t.Fatalf("k=%d: %v rejected", c.k, c.g)
			}
			if !d.Graph.Equal(c.g) {
				t.Errorf("k=%d adv %s: mismatch for %v", c.k, adv.Name(), c.g)
			}
		}
	}
}

func TestRejectsHighDegeneracy(t *testing.T) {
	cases := []struct {
		k int
		g *graph.Graph
	}{
		{1, graph.Cycle(5)},                // degeneracy 2
		{2, graph.Complete(4)},             // degeneracy 3
		{3, graph.Complete(5)},             // degeneracy 4
		{2, graph.CompleteBipartite(3, 3)}, // degeneracy 3
	}
	for _, c := range cases {
		d := runOn(t, Protocol{K: c.k}, c.g, adversary.MinID{})
		if d.InClass {
			t.Errorf("k=%d: %v accepted (degeneracy %d)", c.k, c.g, graph.Degeneracy(c.g))
		}
	}
}

func TestExhaustiveAllGraphsFiveNodesK2(t *testing.T) {
	// For every labeled graph on 5 nodes: accept+reconstruct iff
	// degeneracy ≤ 2, under several schedules.
	p := Protocol{K: 2}
	graph.AllGraphs(5, func(g *graph.Graph) bool {
		inClass := graph.Degeneracy(g) <= 2
		res := engine.Run(p, g, adversary.Rotor{}, engine.Options{})
		if res.Status != core.Success {
			t.Fatalf("%v: %v (%v)", g, res.Status, res.Err)
		}
		d := res.Output.(Decoded)
		if d.InClass != inClass {
			t.Errorf("%v: InClass=%v, want %v", g, d.InClass, inClass)
			return false
		}
		if inClass && !d.Graph.Equal(g) {
			t.Errorf("%v: wrong reconstruction", g)
			return false
		}
		return true
	})
}

func TestForestCaseMatchesK1(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomForest(15, 0.7, rng)
		d := runOn(t, Protocol{K: 1}, g, adversary.NewRandom(int64(trial)))
		if !d.InClass || !d.Graph.Equal(g) {
			t.Fatalf("trial %d: forest round trip failed", trial)
		}
	}
}

func TestTableDecoderAgreesWithNewton(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomKDegenerate(9, 2, rng)
		a := runOn(t, Protocol{K: 2, Decode: Newton}, g, adversary.MinID{})
		b := runOn(t, Protocol{K: 2, Decode: Table}, g, adversary.MinID{})
		if a.InClass != b.InClass {
			t.Fatalf("decoder disagreement on %v", g)
		}
		if a.InClass && !a.Graph.Equal(b.Graph) {
			t.Fatalf("decoder outputs differ on %v", g)
		}
	}
}

func TestMessageSizeLemma1(t *testing.T) {
	// Lemma 1: O(k² log n); concretely ≤ (k+1)(k+2)·⌈log₂(n+1)⌉ + slack for
	// varint length prefixes.
	for _, n := range []int{10, 100, 1000, 10000} {
		for _, k := range []int{1, 2, 3, 5} {
			budget := Protocol{K: k}.MaxMessageBits(n)
			logn := int(math.Ceil(math.Log2(float64(n + 1))))
			bound := (k+1)*(k+2)*logn + 10*(k+1)
			if budget > bound {
				t.Errorf("n=%d k=%d: budget %d > bound %d", n, k, budget, bound)
			}
		}
	}
}

func TestObservedBitsWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, k := range []int{1, 2, 3} {
		g := graph.RandomKDegenerate(60, k, rng)
		res := engine.Run(Protocol{K: k}, g, adversary.MaxID{}, engine.Options{})
		if res.Status != core.Success {
			t.Fatalf("k=%d: %v", k, res.Err)
		}
		if res.MaxBits > (Protocol{K: k}).MaxMessageBits(60) {
			t.Errorf("k=%d: message of %d bits over budget", k, res.MaxBits)
		}
	}
}

func TestLargerGraphRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(41))
	g := graph.RandomKDegenerate(200, 3, rng)
	d := runOn(t, Protocol{K: 3}, g, adversary.NewRandom(99))
	if !d.InClass || !d.Graph.Equal(g) {
		t.Fatal("round trip failed at n=200")
	}
}

func TestExhaustiveSchedulesSmall(t *testing.T) {
	g := graph.Cycle(5)
	want := g.Clone()
	_, err := engine.RunAll(Protocol{K: 2}, g, engine.Options{}, 1<<20,
		func(res *core.Result, order []int) error {
			if res.Status != core.Success {
				return fmt.Errorf("order %v: %v", order, res.Status)
			}
			d := res.Output.(Decoded)
			if !d.InClass || !d.Graph.Equal(want) {
				return fmt.Errorf("order %v: bad output", order)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlanarLikeGridsAnyK5(t *testing.T) {
	// Planar graphs have degeneracy ≤ 5 (paper cites this as a target
	// class); grids are planar with degeneracy 2, so K=5 must also work.
	g := graph.Grid(4, 6)
	d := runOn(t, Protocol{K: 5}, g, adversary.Rotor{})
	if !d.InClass || !d.Graph.Equal(g) {
		t.Error("grid under K=5 failed")
	}
}
