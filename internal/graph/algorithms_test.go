package graph

import (
	"math/rand"
	"testing"
)

func TestBFSForestPath(t *testing.T) {
	g := Path(5)
	r := BFSForest(g)
	if len(r.Roots) != 1 || r.Roots[0] != 1 {
		t.Fatalf("roots = %v", r.Roots)
	}
	wantLayer := []int{0, 0, 1, 2, 3, 4}
	wantParent := []int{0, 0, 1, 2, 3, 4}
	for v := 1; v <= 5; v++ {
		if r.Layer[v] != wantLayer[v] || r.Parent[v] != wantParent[v] {
			t.Errorf("node %d: layer=%d parent=%d", v, r.Layer[v], r.Parent[v])
		}
	}
}

func TestBFSForestMultiComponent(t *testing.T) {
	g := FromEdges(7, [][2]int{{2, 4}, {4, 6}, {3, 5}})
	r := BFSForest(g)
	wantRoots := []int{1, 2, 3, 7}
	if len(r.Roots) != 4 {
		t.Fatalf("roots = %v", r.Roots)
	}
	for i, w := range wantRoots {
		if r.Roots[i] != w {
			t.Errorf("root %d = %d, want %d", i, r.Roots[i], w)
		}
	}
	if r.Layer[6] != 2 || r.Parent[6] != 4 {
		t.Errorf("node 6: layer=%d parent=%d", r.Layer[6], r.Parent[6])
	}
}

func TestBFSParentIsMinIDPrevLayer(t *testing.T) {
	// Node 4 adjacent to both 2 and 3 in layer 1; parent must be 2.
	g := FromEdges(4, [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	r := BFSForest(g)
	if r.Parent[4] != 2 {
		t.Errorf("parent of 4 = %d, want 2", r.Parent[4])
	}
}

func TestBFSLayersEqualDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := RandomGNP(20, 0.15, rng)
		r := BFSForest(g)
		for _, root := range r.Roots {
			dist := Distances(g, root)
			for v := 1; v <= g.N(); v++ {
				if dist[v] >= 0 && r.Layer[v] != dist[v] {
					// v may belong to a different component
					sameComp := false
					for u := root; ; {
						_ = u
						break
					}
					_ = sameComp
					if containsRootOf(g, r, v) == root {
						t.Fatalf("layer[%d]=%d, dist=%d", v, r.Layer[v], dist[v])
					}
				}
			}
		}
	}
}

// containsRootOf returns the canonical root of v's component.
func containsRootOf(g *Graph, r *BFSResult, v int) int {
	u := v
	for r.Parent[u] != 0 {
		u = r.Parent[u]
	}
	return u
}

func TestValidateBFSForest(t *testing.T) {
	g := Path(4)
	r := BFSForest(g)
	if msg := ValidateBFSForest(g, r.Parent, r.Layer); msg != "" {
		t.Errorf("canonical forest rejected: %s", msg)
	}
	bad := append([]int(nil), r.Parent...)
	bad[3] = 1
	if msg := ValidateBFSForest(g, bad, r.Layer); msg == "" {
		t.Error("corrupted parent accepted")
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := FromEdges(6, [][2]int{{1, 2}, {3, 4}, {4, 5}})
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if IsConnected(g) {
		t.Error("disconnected graph reported connected")
	}
	if !IsConnected(Path(5)) || !IsConnected(New(1)) || !IsConnected(New(0)) {
		t.Error("connectivity misreported")
	}
}

func TestBipartite(t *testing.T) {
	if !IsBipartite(Cycle(6)) {
		t.Error("C6 is bipartite")
	}
	if IsBipartite(Cycle(5)) {
		t.Error("C5 is not bipartite")
	}
	side, ok := BipartiteParts(Path(4))
	if !ok || side[1] != 0 || side[2] != 1 || side[3] != 0 {
		t.Errorf("BipartiteParts(P4) = %v %v", side, ok)
	}
}

func TestEvenOddBipartite(t *testing.T) {
	eob := FromEdges(4, [][2]int{{1, 2}, {2, 3}, {3, 4}})
	if !IsEvenOddBipartite(eob) {
		t.Error("path with alternating parity is EOB")
	}
	notEOB := FromEdges(4, [][2]int{{1, 3}})
	if IsEvenOddBipartite(notEOB) {
		t.Error("odd-odd edge accepted as EOB")
	}
	// Bipartite but not EOB: edge 1-3 with proper 2-coloring.
	if !IsBipartite(notEOB) {
		t.Error("single edge is bipartite")
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{New(1), 0},
		{Path(6), 1},
		{RandomTree(20, rand.New(rand.NewSource(3))), 1},
		{Cycle(7), 2},
		{Grid(4, 5), 2},
		{Complete(5), 4},
		{CompleteBipartite(3, 7), 3},
	}
	for i, c := range cases {
		if d := Degeneracy(c.g); d != c.want {
			t.Errorf("case %d: degeneracy = %d, want %d", i, d, c.want)
		}
	}
}

func TestDegeneracyOrderIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		g := RandomGNP(15, 0.3, rng)
		order, k := DegeneracyOrder(g)
		if len(order) != g.N() {
			t.Fatalf("order has %d entries", len(order))
		}
		// Replay the elimination: each node's degree among the remaining
		// nodes must be ≤ k.
		remaining := g.Clone()
		pos := make(map[int]bool)
		for _, v := range order {
			if pos[v] {
				t.Fatal("duplicate in order")
			}
			pos[v] = true
			if remaining.Degree(v) > k {
				t.Fatalf("node %d has degree %d > degeneracy %d at elimination",
					v, remaining.Degree(v), k)
			}
			for _, u := range append([]int(nil), remaining.Neighbors(v)...) {
				remaining.RemoveEdge(v, u)
			}
		}
	}
}

func TestTriangle(t *testing.T) {
	if HasTriangle(Cycle(5)) {
		t.Error("C5 has no triangle")
	}
	if !HasTriangle(Complete(3)) {
		t.Error("K3 has a triangle")
	}
	u, v, w, ok := FindTriangle(FromEdges(5, [][2]int{{1, 4}, {4, 5}, {1, 5}, {2, 3}}))
	if !ok || u != 1 || v != 4 || w != 5 {
		t.Errorf("FindTriangle = %d %d %d %v", u, v, w, ok)
	}
	if HasTriangle(CompleteBipartite(3, 3)) {
		t.Error("bipartite graph has no triangle")
	}
}

func TestMISValidation(t *testing.T) {
	g := Cycle(6)
	if !IsMaximalIndependentSet(g, []int{1, 3, 5}) {
		t.Error("{1,3,5} is a MIS of C6")
	}
	if IsMaximalIndependentSet(g, []int{1, 3}) {
		t.Error("{1,3} is not maximal in C6 (node 5 undominated)")
	}
	if !IsMaximalIndependentSet(g, []int{1, 4}) {
		t.Error("{1,4} is a (small) MIS of C6")
	}
	if IsMaximalIndependentSet(g, []int{1, 2}) {
		t.Error("{1,2} is not independent in C6")
	}
	if !IsMaximalIndependentSet(Complete(4), []int{3}) {
		t.Error("single node is a MIS of K4")
	}
}

func TestEnumerationCounts(t *testing.T) {
	count := 0
	AllGraphs(4, func(*Graph) bool { count++; return true })
	if count != 64 {
		t.Errorf("AllGraphs(4) visited %d, want 64", count)
	}

	forests := 0
	AllForests(4, func(*Graph) bool { forests++; return true })
	// Labeled forests on 4 nodes: 38 (OEIS A001858).
	if forests != 38 {
		t.Errorf("AllForests(4) visited %d, want 38", forests)
	}

	eob := 0
	AllEOBGraphs(4, func(g *Graph) bool {
		if !IsEvenOddBipartite(g) {
			t.Fatal("non-EOB graph enumerated")
		}
		eob++
		return true
	})
	if eob != 16 { // 4 odd-even pairs on {1..4}: {1,2},{1,4},{2,3},{3,4}
		t.Errorf("AllEOBGraphs(4) visited %d, want 16", eob)
	}
}

func TestEnumerationEarlyStop(t *testing.T) {
	count := 0
	AllGraphs(5, func(*Graph) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d, want 10", count)
	}
}

func TestAllGraphsDistinct(t *testing.T) {
	seen := map[string]bool{}
	AllGraphs(5, func(g *Graph) bool {
		k := g.Key()
		if seen[k] {
			t.Fatalf("duplicate graph %v", g)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 1024 {
		t.Errorf("enumerated %d graphs on 5 nodes, want 1024", len(seen))
	}
}

func TestDegeneracyEnumerationMatchesDefinition(t *testing.T) {
	// Cross-check bucket-queue degeneracy against brute force on all graphs
	// with 5 nodes.
	AllGraphs(5, func(g *Graph) bool {
		want := bruteDegeneracy(g)
		if got := Degeneracy(g); got != want {
			t.Fatalf("graph %v: degeneracy %d, want %d", g, got, want)
			return false
		}
		return true
	})
}

// bruteDegeneracy: max over the greedy elimination of min-degree nodes
// (equivalent definition).
func bruteDegeneracy(g *Graph) int {
	h := g.Clone()
	alive := map[int]bool{}
	for v := 1; v <= h.N(); v++ {
		alive[v] = true
	}
	k := 0
	for len(alive) > 0 {
		best, bestDeg := 0, 1<<30
		for v := range alive {
			d := 0
			for _, u := range h.Neighbors(v) {
				if alive[u] {
					d++
				}
			}
			if d < bestDeg || (d == bestDeg && v < best) {
				best, bestDeg = v, d
			}
		}
		if bestDeg > k {
			k = bestDeg
		}
		delete(alive, best)
	}
	return k
}
