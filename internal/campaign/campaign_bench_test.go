package campaign

import (
	"fmt"
	"runtime"
	"testing"
)

// benchSpec is a medium-sized sweep: 1152 jobs of mixed protocols and
// graph families, the shape a real campaign has.
func benchSpec() Spec {
	return Spec{
		Protocols:   []string{"bfs", "mis", "connectivity"},
		Graphs:      []string{"gnp", "tree"},
		Adversaries: []string{"min", "rotor"},
		Sizes:       []int{16, 32, 48, 64},
		Seeds:       12,
		P:           0.2,
	}
}

// BenchmarkCampaignWorkers measures the same campaign at increasing worker
// counts; near-linear scaling up to the core count is the acceptance
// criterion for the sharded pool. Run with:
//
//	go test ./internal/campaign -bench Workers -benchtime 2x
func BenchmarkCampaignWorkers(b *testing.B) {
	spec := benchSpec()
	maxW := runtime.GOMAXPROCS(0)
	for workers := 1; workers <= maxW; workers *= 2 {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Run(spec, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Totals.Runs != rep.Jobs {
					b.Fatalf("lost jobs: %+v", rep.Totals)
				}
			}
		})
	}
}

// BenchmarkCampaignSequentialBaseline pins the per-job overhead of the
// campaign layer itself (expansion, registry lookups, aggregation) by
// running the smallest possible matrix single-threaded.
func BenchmarkCampaignSequentialBaseline(b *testing.B) {
	spec := Spec{
		Protocols:   []string{"build-forest"},
		Graphs:      []string{"tree"},
		Adversaries: []string{"min"},
		Sizes:       []int{16},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
