package numtheory

import (
	"math"
	"math/big"
	"testing"
)

func TestMod(t *testing.T) {
	cases := []struct {
		a, m, want int64
	}{
		{7, 5, 2},
		{-7, 5, 3},
		{-5, 5, 0},
		{0, 1, 0},
		{math.MinInt64, 7, func() int64 {
			r := new(big.Int).Mod(big.NewInt(math.MinInt64), big.NewInt(7))
			return r.Int64()
		}()},
		{math.MaxInt64, 10, 7},
	}
	for _, c := range cases {
		got, err := Mod(c.a, c.m)
		if err != nil {
			t.Errorf("Mod(%d, %d): %v", c.a, c.m, err)
			continue
		}
		if got != c.want {
			t.Errorf("Mod(%d, %d) = %d, want %d", c.a, c.m, got, c.want)
		}
	}
	for _, m := range []int64{0, -3} {
		if _, err := Mod(1, m); err == nil {
			t.Errorf("Mod(1, %d): expected error", m)
		}
	}
}

func TestPowMod(t *testing.T) {
	cases := []struct {
		b, e, m, want int64
	}{
		{2, 10, 1000, 24},
		{2, 10, 1023, 1},
		{0, 0, 7, 1}, // 0^0 = 1 by the usual convention
		{5, 0, 7, 1},
		{0, 5, 7, 0},
		{-2, 3, 7, 6},             // (-8) mod 7
		{3, 63, math.MaxInt64, 0}, // exercises the 128-bit reduction path
	}
	for _, c := range cases {
		want := c.want
		if c.b == 3 { // compute the big case honestly
			r := new(big.Int).Exp(big.NewInt(c.b), big.NewInt(c.e), big.NewInt(c.m))
			want = r.Int64()
		}
		got, err := PowMod(c.b, c.e, c.m)
		if err != nil {
			t.Errorf("PowMod(%d, %d, %d): %v", c.b, c.e, c.m, err)
			continue
		}
		if got != want {
			t.Errorf("PowMod(%d, %d, %d) = %d, want %d", c.b, c.e, c.m, got, want)
		}
	}
	if _, err := PowMod(2, -1, 7); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := PowMod(2, 3, 0); err == nil {
		t.Error("zero modulus accepted")
	}
}

// TestPowModAgainstBig cross-checks the square-and-multiply ladder against
// math/big over a grid that includes moduli past 2³², where naive 64-bit
// multiplication would overflow.
func TestPowModAgainstBig(t *testing.T) {
	moduli := []int64{2, 97, 1 << 31, (1 << 62) - 57, math.MaxInt64}
	bases := []int64{0, 1, 2, -3, 1 << 40, math.MaxInt64}
	exps := []int64{0, 1, 2, 3, 64, 12345}
	for _, m := range moduli {
		for _, b := range bases {
			for _, e := range exps {
				got, err := PowMod(b, e, m)
				if err != nil {
					t.Fatalf("PowMod(%d, %d, %d): %v", b, e, m, err)
				}
				want := new(big.Int).Exp(
					new(big.Int).Mod(big.NewInt(b), big.NewInt(m)),
					big.NewInt(e), big.NewInt(m)).Int64()
				if got != want {
					t.Fatalf("PowMod(%d, %d, %d) = %d, want %d", b, e, m, got, want)
				}
			}
		}
	}
}
