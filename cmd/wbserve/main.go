// wbserve serves one or more campaign result stores over HTTP — the
// read side of `wbcampaign run -store` and, since the v1 job API, a
// write surface too: POST /api/v1/campaigns submits a campaign spec as
// an asynchronous job executed in-process, with per-cell progress,
// cancellation, and the finished report stored where every read route
// serves it. Reports and diffs are immutable and content-addressed, so
// every response carries a strong ETag, repeat requests answer 304 Not
// Modified, and rendered diffs come from an in-memory LRU instead of
// being recomputed.
//
//	wbserve -dir .wbstore                      # serve one store on :8080
//	wbserve -dir .wbstore,.wbstore-exh -addr :9090
//	wbserve -dir /srv/wbstore -readonly        # disable ingest + job submission
//
// Routes: GET /api/v1/reports (list, filterable, paginated), GET
// /api/v1/reports/{hash}/{label} (JSON or CSV), GET /api/v1/diff (text
// or JSON, cached), POST /api/v1/reports (ingest; see `wbcampaign run
// -push`), POST/GET /api/v1/campaigns (+/{id}, /{id}/cancel — see
// `wbcampaign run -remote`), GET /api/v1/campaigns/{id}/events (SSE
// stream of per-cell results as they complete; Last-Event-ID resumes,
// late subscribers replay, slow consumers are evicted rather than
// stalling the sweep), GET /watch/{id} (embedded live-sweep page over
// that stream), GET /api/v1/trace/{id} (span tree of a
// job), GET /healthz, GET /metricsz (JSON), GET /metrics (Prometheus
// text). Structured request and job logs go to stderr (-log-level,
// -log-format), and -debug-addr serves net/http/pprof on a separate
// listener. The process shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests and canceling in-flight campaign jobs
// (their status reads "canceled", and no partial report touches the
// store), then logs one structured summary line with the lifetime job
// counts and the drain duration.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/resultstore"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		dirs       = flag.String("dir", ".wbstore", "comma-separated result store directories; the first receives ingested reports and job results")
		cache      = flag.Int("cache", server.DefaultCacheSize, "rendered-diff LRU capacity (entries)")
		readonly   = flag.Bool("readonly", false, "disable report ingest and campaign job submission")
		jobWorkers = flag.Int("job-workers", 0, "campaign worker pool per submitted job; 0 = GOMAXPROCS")
		quiet      = flag.Bool("quiet", false, "suppress per-error logging")
		logLevel   = flag.String("log-level", "info", "structured log level: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "structured log format: text|json")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables it")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wbserve: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fail(err)
	}

	var stores []*resultstore.Store
	for _, dir := range strings.Split(*dirs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		st, err := resultstore.Open(dir)
		if err != nil {
			fail(err)
		}
		stores = append(stores, st)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "wbserve: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv, err := server.New(server.Options{
		Stores:     stores,
		CacheSize:  *cache,
		ReadOnly:   *readonly,
		JobWorkers: *jobWorkers,
		Logf:       logf,
		Logger:     logger,
	})
	if err != nil {
		fail(err)
	}

	// The profiler gets its own mux on its own listener: pprof must never
	// ride the public handler, where it would be one reverse-proxy
	// misconfiguration away from the internet.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(err)
		}
		logger.Info("pprof listening", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	// Listen before announcing, so -addr :0 can print the real port and a
	// taken port fails before anything claims to be serving.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "wbserve: serving %s on http://%s\n", *dirs, ln.Addr())

	select {
	case err := <-errc:
		// Serve only returns on failure; ErrServerClosed cannot arrive here
		// before a shutdown is requested.
		fail(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Fprintln(os.Stderr, "wbserve: shutting down")
	drainStart := time.Now()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Drain campaign jobs first — cancellation reaches their sweeps
	// immediately and each records a terminal "canceled" status — then let
	// the HTTP server finish in-flight requests (including status polls
	// observing those cancellations).
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "wbserve:", err)
	}
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	submitted, done, failed, canceled := srv.Telemetry().Jobs.Counts()
	logger.Info("shutdown complete",
		"jobs_submitted", submitted, "jobs_done", done,
		"jobs_failed", failed, "jobs_canceled", canceled,
		"drain_ms", float64(time.Since(drainStart).Microseconds())/1000)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wbserve:", err)
	os.Exit(1)
}
