package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func mustChoose(t *testing.T, src string) *Program {
	t.Helper()
	p, err := CompileChoose(src)
	if err != nil {
		t.Fatalf("CompileChoose(%q): %v", src, err)
	}
	return p
}

func evalChoose(t *testing.T, src string, round int, candidates []int, boardLen, last int) int {
	t.Helper()
	got, err := mustChoose(t, src).EvalChoose(round, candidates, boardLen, last)
	if err != nil {
		t.Fatalf("EvalChoose(%q): %v", src, err)
	}
	return got
}

func TestEvalChooseBasics(t *testing.T) {
	cands := []int{2, 5, 9}
	cases := []struct {
		src  string
		want int
	}{
		{"min(candidates)", 2},
		{"max(candidates)", 9},
		{"candidates[0]", 2},
		{"candidates[len(candidates) - 1]", 9},
		{"candidates[argmax(candidates)]", 9},
		{"candidates[argmin(candidates)]", 2},
		{"pick(round)", 5},     // round 1 mod 3 candidates
		{"pick(-1)", 9},        // mathematical mod: -1 → index 2
		{"prefer(7, 5, 2)", 5}, // 7 absent, 5 present
		{"prefer(1, 3)", 2},    // none present → candidates[0]
		{"has(5) ? max(candidates) : min(candidates)", 9},
		{"has(4) ? max(candidates) : min(candidates)", 2},
		{"min(9, 5, 2)", 2},
		{"max(2 + 3, 9 - 9)", 5},
		{"mod(-7, 5) + 2", 5},                          // mod(-7,5)=3
		{"powmod(2, 10, 1023) - 1 + candidates[0]", 2}, // 2^10 mod 1023 = 1
		{"round + boardlen + lastwriter + 5", 5},       // 1 + 0 + (-1) + 5
		{"true and false ? 9 : 2", 2},
		{"not has(4) ? 9 : 2", 9},
		{"1 < 2 and 2 <= 2 ? 5 : 9", 5},
		{"def f(x) = x * 2; prefer(f(1))", 2},
		{"def fib(k) = k < 2 ? k : fib(k-1) + fib(k-2); prefer(fib(5))", 5},
	}
	for _, c := range cases {
		if got := evalChoose(t, c.src, 1, cands, 0, -1); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalActivate(t *testing.T) {
	p, err := CompileActivate("id % 2 == 1 or degree > 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		id, degree int
		want       bool
	}{{1, 0, true}, {2, 1, false}, {2, 3, true}} {
		got, err := p.EvalActivate(c.id, 5, c.degree, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("id=%d degree=%d: got %v, want %v", c.id, c.degree, got, c.want)
		}
	}
}

func TestCompileErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src     string
		wantPos string // "line:col" prefix after "script:"
		wantSub string
	}{
		{"", "1:1", "empty script"},
		{"candidates[", "1:12", "expected an expression"},
		{"1 +", "1:4", "expected an expression"},
		{"min(candidates) extra", "1:17", "after the result expression"},
		{"candiates[0]", "1:1", "did you mean candidates?"},
		{"true", "1:1", "must be int"},
		{"1 < 2", "1:3", "must be int"},
		{"min(true)", "1:1", "wrong arguments for min"},
		{"not 3", "1:1", "not wants bool"},
		{"1 < 2 < 3", "1:7", "after the result expression"}, // comparisons do not chain
		{"def f(x) = x; def f(y) = y; f(1)", "1:15", "defined twice"},
		{"def len(x) = x; len(1)", "1:1", "cannot redefine built-in"},
		{"def f(round) = round; f(1)", "1:1", "shadows a built-in variable"},
		{"f(1)", "1:1", "unknown identifier f"},
		{"pick", "1:1", "pick is a function"},
		{"@", "1:1", "unexpected character"},
		{"99999999999999999999", "1:1", "does not fit in 64 bits"},
	}
	for _, c := range cases {
		_, err := CompileChoose(c.src)
		if err == nil {
			t.Errorf("CompileChoose(%q): expected error", c.src)
			continue
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "script:"+c.wantPos+":") {
			t.Errorf("CompileChoose(%q) = %q, want position %s", c.src, msg, c.wantPos)
		}
		if !strings.Contains(msg, c.wantSub) {
			t.Errorf("CompileChoose(%q) = %q, want substring %q", c.src, msg, c.wantSub)
		}
	}
}

func TestActivateModeRejectsChooseStdlib(t *testing.T) {
	for _, src := range []string{"has(1)", "pick(0) > 0", "len(candidates) > 0", "round > 0"} {
		if _, err := CompileActivate(src); err == nil {
			t.Errorf("CompileActivate(%q): expected error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"1 / (round - 1)", "division by zero"},
		{"1 % (round - 1)", "division by zero"},
		{"candidates[5]", "out of range"},
		{"candidates[-1]", "out of range"},
		{"mod(3, 0)", "modulus must be positive"},
		{"powmod(2, -1, 7)", "powmod"},
		{"def f(x) = f(x); f(1)", "budget"}, // infinite recursion: steps or depth
	}
	for _, c := range cases {
		p := mustChoose(t, c.src)
		_, err := p.EvalChoose(1, []int{1, 2}, 0, -1)
		if err == nil {
			t.Errorf("EvalChoose(%q): expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) && !strings.Contains(err.Error(), "depth") {
			t.Errorf("EvalChoose(%q) = %q, want substring %q", c.src, err.Error(), c.wantSub)
		}
	}
}

func TestEvalBudgetTerminates(t *testing.T) {
	// A deeply recursive but convergent script must hit the step budget,
	// not hang: ack-like blowup bounded by MaxEvalSteps.
	p := mustChoose(t, "def f(k) = k <= 0 ? 1 : f(k-1) + f(k-1); prefer(f(60))")
	_, err := p.EvalChoose(1, []int{1}, 0, -1)
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("got %q, want budget error", err)
	}
}

func TestCallDepthBudget(t *testing.T) {
	// Linear recursion deeper than MaxCallDepth but cheaper than the step
	// budget must trip the depth cap specifically.
	p := mustChoose(t, "def f(k) = k <= 0 ? 1 : f(k-1); prefer(f(5000))")
	_, err := p.EvalChoose(1, []int{1}, 0, -1)
	if err == nil {
		t.Fatal("expected call-depth exhaustion")
	}
	if !strings.Contains(err.Error(), "call depth") {
		t.Fatalf("got %q, want call-depth error", err)
	}
}

func TestSourceBudgets(t *testing.T) {
	if _, err := CompileChoose(strings.Repeat(" ", MaxSourceBytes+1)); err == nil {
		t.Error("oversized source accepted")
	}
	deep := strings.Repeat("(", MaxParseDepth+1) + "1" + strings.Repeat(")", MaxParseDepth+1)
	if _, err := CompileChoose(deep); err == nil {
		t.Error("over-deep nesting accepted")
	}
}

func TestPrintParseFixpoint(t *testing.T) {
	srcs := []string{
		"def f(x, y) = x * y + 1; f(round, 2) % 5 + candidates[0]",
		"has(3) and not has(4) or round == 0 ? min(candidates) : pick(round - -1)",
		"-  -5 + (((round)))",
		"powmod(mod(round, 7), 3, 11)",
	}
	for _, src := range srcs {
		p := mustChoose(t, src)
		printed := p.String()
		p2, err := CompileChoose(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed from %q): %v", printed, src, err)
		}
		if p2.String() != printed {
			t.Errorf("print∘parse not a fixpoint:\n first: %s\nsecond: %s", printed, p2.String())
		}
	}
}

func TestAdversaryFaultsOnBadChoice(t *testing.T) {
	// A script returning a non-candidate records a fault and yields -1.
	p := mustChoose(t, "max(candidates) + 1")
	adv, err := NewAdversary(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := adv.Choose(0, []int{1, 2}, core.NewBoard()); got != -1 {
		t.Fatalf("Choose = %d, want -1", got)
	}
	if adv.Fault() == nil {
		t.Fatal("fault not recorded")
	}
	// Faults are sticky.
	if got := adv.Choose(1, []int{1, 2}, core.NewBoard()); got != -1 {
		t.Fatalf("post-fault Choose = %d, want -1", got)
	}
}

func TestAdversaryTracksLastWriter(t *testing.T) {
	p := mustChoose(t, "lastwriter == -1 ? max(candidates) : min(candidates)")
	adv, err := NewAdversary(p)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBoard()
	if got := adv.Choose(0, []int{1, 2, 3}, b); got != 3 {
		t.Fatalf("first Choose = %d, want 3", got)
	}
	if got := adv.Choose(1, []int{1, 2}, b); got != 1 {
		t.Fatalf("second Choose = %d, want 1", got)
	}
}

func TestModeMismatch(t *testing.T) {
	choose := mustChoose(t, "min(candidates)")
	if _, err := choose.EvalActivate(1, 2, 3, 4); err == nil {
		t.Error("EvalActivate on a choose program: expected error")
	}
	if _, err := NewGate(nil, choose); err == nil {
		t.Error("NewGate with a choose program: expected error")
	}
	act, err := CompileActivate("id > 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := act.EvalChoose(0, []int{1}, 0, -1); err == nil {
		t.Error("EvalChoose on an activate program: expected error")
	}
	if _, err := NewAdversary(act); err == nil {
		t.Error("NewAdversary with an activate program: expected error")
	}
}
