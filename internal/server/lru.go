package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lru is a fixed-capacity, concurrency-safe cache of rendered response
// bodies. Keys are store key pairs plus a representation variant, and the
// underlying runs are immutable, so entries never need invalidation — the
// only eviction is capacity pressure, oldest-use first. Hit and miss
// counters feed the metrics endpoint.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached body for key, marking it most recently used.
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*lruEntry).body, true
}

// add inserts (or refreshes) a body, evicting the least recently used
// entry beyond capacity. Bodies are cached as-is; callers must not mutate
// them afterwards.
func (c *lru) add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// stats snapshots the counters for the metrics endpoint.
func (c *lru) stats() (hits, misses int64, entries, capacity int) {
	return c.hits.Load(), c.misses.Load(), c.len(), c.cap
}
