package engine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/registry"
)

// TestMemoizedMatchesNaiveAllRegistered is the differential property test
// behind the memoized default: for every registered protocol on every
// path/cycle/complete graph with n ≤ 5, under the protocol's native model
// and forced under each of the four models, the memoized and naive
// exhaustive walks must agree byte-for-byte — same outputs with the same
// schedule counts, same deadlock and failure tallies, and a naive step
// count that the memoized walk accounts for exactly as Steps + StepsSaved.
// Model violations (e.g. forcing a SYNC protocol under SIMASYNC
// activation) must abort both walks alike.
func TestMemoizedMatchesNaiveAllRegistered(t *testing.T) {
	graphs := []string{"path", "cycle", "complete"}
	models := []string{"native", "SIMASYNC", "SIMSYNC", "ASYNC", "SYNC"}
	for _, pname := range registry.Protocols() {
		spec := pname
		switch pname {
		case "lemma4":
			// lemma4 is an arg-requiring wrapper; exercise it over mis.
			spec = "lemma4:mis"
		case "gate":
			// gate is an arg-requiring wrapper; exercise a predicate that
			// delays but never permanently silences a node.
			spec = "gate:mis:id % 2 == 1 or boardlen * 2 >= n"
		}
		for _, gname := range graphs {
			for n := 2; n <= 5; n++ {
				if gname == "cycle" && n < 3 {
					continue
				}
				params := registry.Params{N: n, K: 2, Seed: 1}
				proto, err := registry.NewProtocol(spec, params)
				if err != nil {
					t.Fatalf("%s: %v", spec, err)
				}
				g, err := registry.NewGraph(gname, params, nil)
				if err != nil {
					t.Fatalf("%s: %v", gname, err)
				}
				for _, mname := range models {
					model, err := registry.ParseModel(mname)
					if err != nil {
						t.Fatal(err)
					}
					coord := fmt.Sprintf("%s/%s n=%d %s", spec, gname, n, mname)
					naive, errN := OutputSpectrum(proto, g,
						Options{Model: model, Exhaustive: ExhaustiveNaive}, 1<<20)
					memo, errM := OutputSpectrum(proto, g, Options{Model: model}, 1<<20)
					if (errN != nil) != (errM != nil) {
						t.Errorf("%s: naive err %v, memoized err %v", coord, errN, errM)
						continue
					}
					if errN != nil {
						continue
					}
					if naive.Schedules != memo.Schedules {
						t.Errorf("%s: schedules %d vs %d", coord, naive.Schedules, memo.Schedules)
					}
					if naive.Deadlocks != memo.Deadlocks || naive.Failures != memo.Failures {
						t.Errorf("%s: deadlocks/failures %d/%d vs %d/%d", coord,
							naive.Deadlocks, naive.Failures, memo.Deadlocks, memo.Failures)
					}
					if !reflect.DeepEqual(naive.Outputs, memo.Outputs) {
						t.Errorf("%s: outputs %v vs %v", coord, naive.Outputs, memo.Outputs)
					}
					if naive.Steps != memo.Steps+memo.StepsSaved {
						t.Errorf("%s: naive %d steps, memoized %d + %d saved", coord,
							naive.Steps, memo.Steps, memo.StepsSaved)
					}
				}
			}
		}
	}
}
