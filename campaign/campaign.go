// Package campaign is the public SDK for batch whiteboard simulation: a
// declarative Spec — protocol set × graph family × size sweep × adversary
// set × model override × seed range — expanded into a job matrix and
// executed on a sharded worker pool. It is the stable facade over
// repro/internal/campaign, in the style of the root whiteboard package:
// the CLI (cmd/wbcampaign), the HTTP job API (cmd/wbserve) and library
// consumers are three clients of this one API.
//
// Two execution shapes are offered. Run produces the whole Report at
// once; a Runner's Stream yields each completed cell as an iter.Seq2 the
// moment it — and every cell before it in matrix order — has finished, so
// callers can render incrementally, fan results out, or cancel mid-sweep
// through the context:
//
//	r := campaign.NewRunner(campaign.Options{})
//	for cell, err := range r.Stream(ctx, spec) {
//		if err != nil { ... }
//		fmt.Println(cell.Index, cell.Cell.Protocol)
//	}
//
// Reports are deterministic: the same spec produces byte-identical JSON
// and CSV regardless of worker count or streaming consumption, because
// every job's seed derives from its coordinates, not scheduling order.
package campaign

import (
	"context"

	internal "repro/internal/campaign"
)

// Spec declares a campaign; see the field docs for the axes. The zero
// values of Seeds and Models are normalized to 1 and ["native"].
type Spec = internal.Spec

// Job is one simulation of the expanded matrix: a cell coordinate plus a
// trial index and the seed derived from them.
type Job = internal.Job

// Options tunes campaign execution: worker count plus per-job and
// per-cell progress hooks. OnCell fires in matrix order as the stream
// emits; OnCellDone fires in completion order the moment a cell's last
// job retires (the realtime hook the server's SSE event stream is built
// on). The zero value runs with GOMAXPROCS workers.
type Options = internal.Options

// Runner executes sweeps; its Stream yields per-cell results and its Run
// drains the stream into a whole Report. Safe for concurrent use.
type Runner = internal.Runner

// CellResult is one completed cell of a streaming sweep.
type CellResult = internal.CellResult

// CellRange is a half-open [Start, End) slice of a spec's cell matrix in
// matrix order; setting Spec.Cells to one restricts execution to that
// shard, with cells byte-identical to the same slice of a full run.
type CellRange = internal.CellRange

// Report is a finished campaign: the normalized spec, per-cell statistics
// and outcome totals, with deterministic JSON/CSV emitters.
type Report = internal.Report

// Cell aggregates all trials of one (protocol, graph, n, adversary,
// model) coordinate.
type Cell = internal.Cell

// Dist summarizes an integer distribution with exact accumulators.
type Dist = internal.Dist

// ExhaustiveCell tallies the schedule enumeration of an exhaustive cell.
type ExhaustiveCell = internal.ExhaustiveCell

// Totals sums outcome counts across all cells.
type Totals = internal.Totals

// ModeExhaustive is the Spec.Mode value requesting full schedule
// enumeration per cell instead of sampled adversaries.
const ModeExhaustive = internal.ModeExhaustive

// DefaultMaxSteps is the per-job write budget used when an exhaustive
// spec leaves MaxSteps at zero.
const DefaultMaxSteps = internal.DefaultMaxSteps

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner { return internal.NewRunner(opts) }

// Run expands the spec and executes every job, returning the whole
// report: the non-streaming convenience over Runner.Stream.
func Run(spec Spec, opts Options) (*Report, error) { return internal.Run(spec, opts) }

// RunContext is Run with a context: canceling ctx stops the sweep
// between jobs and returns the cancellation cause.
func RunContext(ctx context.Context, spec Spec, opts Options) (*Report, error) {
	return internal.NewRunner(opts).Run(ctx, spec)
}

// LoadSpec reads a Spec from a JSON file, rejecting unknown fields.
func LoadSpec(path string) (Spec, error) { return internal.LoadSpec(path) }

// AssembleReport builds a whole-campaign report from externally produced
// cells in matrix order — the merge step of a sharded (cell-range) run.
func AssembleReport(spec Spec, cells []Cell) (*Report, error) {
	return internal.AssembleReport(spec, cells)
}

// FormatFloat renders a float the way reports and diffs do, so external
// tooling can compare values without formatting churn.
func FormatFloat(v float64) string { return internal.FormatFloat(v) }
