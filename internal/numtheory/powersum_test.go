package numtheory

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
)

func TestPowerSumsSmall(t *testing.T) {
	sums := PowerSums([]int{2, 3}, 3)
	want := []int64{5, 13, 35} // 2+3, 4+9, 8+27
	for p, w := range want {
		if sums[p].Int64() != w {
			t.Errorf("p=%d: got %v, want %d", p+1, sums[p], w)
		}
	}
}

func TestPowerSumsEmpty(t *testing.T) {
	sums := PowerSums(nil, 4)
	for p, s := range sums {
		if s.Sign() != 0 {
			t.Errorf("p=%d: empty set sum %v", p+1, s)
		}
	}
}

func TestPowerSums64MatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(100)
		k := 1 + rng.Intn(4)
		var ids []int
		for v := 1; v <= n; v++ {
			if rng.Intn(3) == 0 {
				ids = append(ids, v)
			}
		}
		fast, ok := PowerSums64(ids, k)
		if !ok {
			continue
		}
		slow := PowerSums(ids, k)
		for p := range fast {
			if new(big.Int).SetUint64(fast[p]).Cmp(slow[p]) != 0 {
				t.Fatalf("n=%d k=%d p=%d: fast %d, slow %v", n, k, p+1, fast[p], slow[p])
			}
		}
	}
}

func TestPowerSums64OverflowDetected(t *testing.T) {
	// 2^60-ish ids to the 3rd power overflow.
	ids := []int{1 << 30}
	if _, ok := PowerSums64(ids, 3); ok {
		t.Error("expected overflow flag")
	}
}

func TestSubtractMember(t *testing.T) {
	sums := PowerSums([]int{2, 5, 9}, 3)
	SubtractMember(sums, 5)
	want := PowerSums([]int{2, 9}, 3)
	for p := range sums {
		if sums[p].Cmp(want[p]) != 0 {
			t.Errorf("p=%d: got %v, want %v", p+1, sums[p], want[p])
		}
	}
}

func TestNewtonDecodeKnownSets(t *testing.T) {
	cases := [][]int{
		{},
		{1},
		{7},
		{1, 2},
		{3, 9},
		{1, 5, 8},
		{2, 4, 6, 10},
		{1, 2, 3, 4, 5},
	}
	for _, ids := range cases {
		k := len(ids)
		if k == 0 {
			k = 2
		}
		sums := PowerSums(ids, k)
		got, err := NewtonDecode(10, len(ids), sums)
		if err != nil {
			t.Fatalf("decode %v: %v", ids, err)
		}
		if !reflect.DeepEqual(got, ids) && !(len(got) == 0 && len(ids) == 0) {
			t.Errorf("decode: got %v, want %v", got, ids)
		}
	}
}

func TestNewtonDecodeSurplusSumsVerified(t *testing.T) {
	ids := []int{2, 5}
	sums := PowerSums(ids, 4) // k=4 sums for a degree-2 node
	got, err := NewtonDecode(9, 2, sums)
	if err != nil || !reflect.DeepEqual(got, ids) {
		t.Fatalf("decode with surplus sums: %v, %v", got, err)
	}
	// Corrupt a surplus sum: must be rejected.
	sums[3].Add(sums[3], big.NewInt(1))
	if _, err := NewtonDecode(9, 2, sums); err == nil {
		t.Error("corrupted surplus sum accepted")
	}
}

func TestNewtonDecodeNoSolution(t *testing.T) {
	// p1=1, p2=2 has no subset solution: {1} gives (1,1); nothing gives (1,2).
	sums := []*big.Int{big.NewInt(1), big.NewInt(2)}
	if _, err := NewtonDecode(10, 1, sums); err != ErrNoSolution {
		t.Errorf("got %v, want ErrNoSolution", err)
	}
	// Sum out of range: {11} when n=10.
	sums2 := PowerSums([]int{11}, 1)
	if _, err := NewtonDecode(10, 1, sums2); err != ErrNoSolution {
		t.Errorf("got %v, want ErrNoSolution", err)
	}
}

func TestNewtonDecodeBadArgs(t *testing.T) {
	if _, err := NewtonDecode(5, 6, PowerSums([]int{1}, 6)); err == nil {
		t.Error("d > n accepted")
	}
	if _, err := NewtonDecode(5, 2, PowerSums([]int{1, 2}, 1)); err == nil {
		t.Error("too few sums accepted")
	}
	if _, err := NewtonDecode(5, -1, nil); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestNewtonDecodeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(200)
		d := rng.Intn(6)
		if d > n {
			d = n
		}
		perm := rng.Perm(n)
		ids := make([]int, d)
		for i := 0; i < d; i++ {
			ids[i] = perm[i] + 1
		}
		ids = SortedCopy(ids)
		k := d + rng.Intn(3)
		if k == 0 {
			k = 1
		}
		sums := PowerSums(ids, k)
		got, err := NewtonDecode(n, d, sums)
		if err != nil {
			t.Fatalf("trial %d (n=%d d=%d ids=%v): %v", trial, n, d, ids, err)
		}
		if !reflect.DeepEqual(got, ids) && !(len(got) == 0 && len(ids) == 0) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, ids)
		}
	}
}

func TestNewtonDecodeLargeN(t *testing.T) {
	// n large enough that n^(k+1) needs big arithmetic.
	n := 1 << 20
	ids := []int{12345, 678901, 1 << 19, n}
	sums := PowerSums(ids, 6)
	got, err := NewtonDecode(n, 4, sums)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, SortedCopy(ids)) {
		t.Errorf("got %v", got)
	}
}

func TestTableDecoder(t *testing.T) {
	tab := NewTable(8, 3)
	// #subsets of size ≤ 3 of 8 elements: 1 + 8 + 28 + 56 = 93.
	if tab.Size() != 93 {
		t.Errorf("table size %d, want 93", tab.Size())
	}
	for _, ids := range [][]int{{}, {4}, {1, 8}, {2, 3, 7}} {
		sums := PowerSums(ids, 3)
		got, err := tab.Decode(len(ids), sums)
		if err != nil {
			t.Fatalf("table decode %v: %v", ids, err)
		}
		if !reflect.DeepEqual(got, ids) && !(len(got) == 0 && len(ids) == 0) {
			t.Errorf("table decode: got %v, want %v", got, ids)
		}
	}
	// Wrong degree claim.
	if _, err := tab.Decode(2, PowerSums([]int{1}, 3)); err == nil {
		t.Error("degree mismatch accepted")
	}
	// Unknown sums.
	if _, err := tab.Decode(1, []*big.Int{big.NewInt(100), big.NewInt(0), big.NewInt(0)}); err != ErrNoSolution {
		t.Error("unknown sums accepted")
	}
	// Wrong k.
	if _, err := tab.Decode(1, PowerSums([]int{1}, 2)); err == nil {
		t.Error("k mismatch accepted")
	}
}

func TestDecodersAgree(t *testing.T) {
	tab := NewTable(10, 3)
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		d := rng.Intn(4)
		perm := rng.Perm(10)
		ids := SortedCopy(perm[:d])
		for i := range ids {
			ids[i]++
		}
		ids = SortedCopy(ids)
		sums := PowerSums(ids, 3)
		a, errA := NewtonDecode(10, d, sums)
		b, errB := tab.Decode(d, sums)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("decoder disagreement on %v: %v vs %v", ids, errA, errB)
		}
		if errA == nil && !(len(a) == 0 && len(b) == 0) && !reflect.DeepEqual(a, b) {
			t.Fatalf("decoder outputs differ: %v vs %v", a, b)
		}
	}
}

func TestVerifyWrightSmall(t *testing.T) {
	// Theorem 1 (Wright): power-sum vectors are unique per subset size.
	for _, c := range []struct{ n, k int }{{6, 1}, {6, 2}, {7, 3}, {5, 4}} {
		if err := VerifyWright(c.n, c.k); err != nil {
			t.Errorf("n=%d k=%d: %v", c.n, c.k, err)
		}
	}
}

func TestVerifyWrightUniqueAcrossSizesGivenDegree(t *testing.T) {
	// Stronger use in the protocol: (degree, sums) pairs are unique. Sums
	// alone can collide across sizes only if sums are equal with different
	// cardinalities; Wright with zero-padding covers it, but the protocol
	// always transmits the degree, so we only need per-size uniqueness,
	// which VerifyWright established. This test documents the contract.
	a := PowerSums([]int{3}, 2)
	b := PowerSums([]int{1, 2}, 2)
	if a[0].Cmp(b[0]) != 0 {
		t.Skip("unexpected: no size collision to document")
	}
	if a[1].Cmp(b[1]) == 0 {
		t.Error("p2 must differ between {3} and {1,2}")
	}
}
