package campaign

import "strconv"

// FormatFloat is the single float renderer for every human- and
// machine-readable emission of campaign statistics: CSV cells, the CLI
// summary line, and resultstore diff output all go through it. The
// precision is fixed at three decimals so that two renderings of the same
// value are always byte-identical — cross-run diffs can then compare
// formatted strings and never churn on formatting alone.
func FormatFloat(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
