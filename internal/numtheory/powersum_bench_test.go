package numtheory

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkPowerSums compares the big.Int encoder against the
// overflow-checked uint64 fast path (the encode-side ablation; decode-side
// is BenchmarkLemma2_Decoders at the repository root).
func BenchmarkPowerSums(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{2, 4, 8} {
		for _, deg := range []int{4, 32} {
			ids := make([]int, deg)
			// Keep id^k within uint64 so both paths run the same input:
			// 100^8 ≈ 1e16 < 2^63.
			for i := range ids {
				ids[i] = 1 + rng.Intn(100)
			}
			b.Run(fmt.Sprintf("big/k=%d/deg=%d", k, deg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					PowerSums(ids, k)
				}
			})
			b.Run(fmt.Sprintf("uint64/k=%d/deg=%d", k, deg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, ok := PowerSums64(ids, k); !ok {
						b.Fatal("unexpected overflow")
					}
				}
			})
		}
	}
}

// BenchmarkNewtonDecode measures decode cost across degrees and domains.
func BenchmarkNewtonDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{100, 10000} {
		for _, d := range []int{2, 4, 8} {
			perm := rng.Perm(n)
			ids := SortedCopy(perm[:d])
			for i := range ids {
				ids[i]++
			}
			ids = SortedCopy(ids)
			sums := PowerSums(ids, d)
			b.Run(fmt.Sprintf("n=%d/d=%d", n, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := NewtonDecode(n, d, sums); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTableBuild measures the Lemma 2 precomputation cost (the space-
// time trade the paper describes).
func BenchmarkTableBuild(b *testing.B) {
	for _, c := range []struct{ n, k int }{{16, 2}, {24, 3}, {32, 3}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", c.n, c.k), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				size = NewTable(c.n, c.k).Size()
			}
			b.ReportMetric(float64(size), "entries")
		})
	}
}
