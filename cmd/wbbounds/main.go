// wbbounds prints the Lemma 3 counting curves — log₂(family size) versus
// whiteboard capacity n·f(n) — for the families the paper's lower bounds
// quantify over, and exhibits pigeonhole collisions for concrete strawman
// protocols.
package main

import (
	"flag"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/registry"
)

func main() {
	ns := flag.String("ns", "16,32,64,128,256,512", "comma separated n values")
	flag.Parse()

	fmt.Println("Lemma 3 — log2 |family| vs whiteboard capacity n·f(n)")
	fmt.Println("(a family is reconstructible only if log2|family| ≤ capacity + n)")
	fmt.Println()
	for _, n := range parseInts(*ns) {
		logn := bitLen(n)
		budgets := []struct {
			label string
			bits  int
		}{
			{"f=log n", logn},
			{"f=4 log n (Thm 2 forests)", 4 * logn},
			{"f=√n", isqrt(n)},
			{"f=n/8", n / 8},
		}
		fmt.Printf("n = %d\n", n)
		for _, b := range budgets {
			if b.bits < 1 {
				continue
			}
			fmt.Printf("  budget %-26s (%4d bits):\n", b.label, b.bits)
			for _, row := range bounds.Lemma3Report(n, b.bits) {
				fmt.Printf("    %s\n", row)
			}
		}
		fmt.Println()
	}

	fmt.Println("Pigeonhole collisions for concrete SIMASYNC strawmen (n=5, all 1024 graphs):")
	col := bounds.FindCollision(bounds.DegreeOnly{},
		func(fn func(*graph.Graph) bool) { graph.AllGraphs(5, fn) },
		func(g *graph.Graph) string { return fmt.Sprint(graph.HasTriangle(g)) })
	if col != nil {
		fmt.Printf("  degree-only vs TRIANGLE:   %v (tri=%s)  ≡board≡  %v (tri=%s)\n",
			col.A, col.PropertyA, col.B, col.PropertyB)
	}
	col = bounds.FindCollision(bounds.Sketch{Seed: 42, B: 4},
		func(fn func(*graph.Graph) bool) { graph.AllEOBGraphs(6, fn) },
		func(g *graph.Graph) string { return g.Key() })
	if col != nil {
		fmt.Printf("  4-bit sketch vs BUILD/EOB: %v  ≡board≡  %v\n", col.A, col.B)
	}
	col = bounds.FindCollision(bounds.TruncatedRow{B: 2},
		func(fn func(*graph.Graph) bool) { graph.AllGraphs(5, fn) },
		func(g *graph.Graph) string { return g.Key() })
	if col != nil {
		fmt.Printf("  2-col truncated rows:      %v  ≡board≡  %v\n", col.A, col.B)
	}
	fmt.Println()
	fmt.Println("Sanity (upper bound really is achievable): the Section 3.1 forest message")
	fmt.Println("map (ID, degree, neighbor-ID sum) admits NO collision on all forests with n=6:")
	col = bounds.FindCollision(registry.MustProtocol("build-forest", registry.Params{}),
		func(fn func(*graph.Graph) bool) { graph.AllForests(6, fn) },
		func(g *graph.Graph) string { return g.Key() })
	fmt.Printf("  collision found: %v\n", col != nil)
}

func parseInts(s string) []int {
	var out []int
	cur := 0
	has := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if has {
				out = append(out, cur)
			}
			cur, has = 0, false
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int(s[i]-'0')
			has = true
		}
	}
	return out
}

func bitLen(n int) int {
	b := 0
	for v := n; v > 0; v >>= 1 {
		b++
	}
	return b
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
