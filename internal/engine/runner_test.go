package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocols/bfs"
	"repro/internal/protocols/buildforest"
	"repro/internal/protocols/mis"
)

// TestRunnerMatchesRun drives a Runner through a mixed workload —
// different protocols, graph sizes and adversaries back to back — and
// checks every run against the allocating Run: same status, same write
// order, same board content, same rounds. This is the state-reuse
// contract the campaign worker pool depends on.
func TestRunnerMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	runner := NewRunner()
	type job struct {
		p   core.Protocol
		g   *graph.Graph
		adv adversary.Adversary
	}
	var jobs []job
	for trial := 0; trial < 5; trial++ {
		jobs = append(jobs,
			job{bfs.New(bfs.General), graph.RandomGNP(20+trial*7, 0.2, rng), adversary.MinID{}},
			job{mis.Protocol{Root: 1}, graph.RandomGNP(12, 0.3, rng), adversary.Rotor{}},
			job{buildforest.Protocol{}, graph.RandomTree(9, rng), adversary.MaxID{}},
			// Deadlocks and failures must reset cleanly too.
			job{bfs.New(bfs.General), graph.Cycle(5), adversary.MinID{}},
		)
	}
	for i, j := range jobs {
		opts := Options{}
		if j.g.N() == 5 {
			opts.Model = ModelPtr(core.Async) // the C5 deadlock witness
		}
		want := Run(j.p, j.g, j.adv, opts)
		got := runner.Run(j.p, j.g, j.adv, opts)
		if got.Status != want.Status || got.Rounds != want.Rounds || got.MaxBits != want.MaxBits {
			t.Fatalf("job %d (%s): got (%v,%d,%d), want (%v,%d,%d)",
				i, j.p.Name(), got.Status, got.Rounds, got.MaxBits, want.Status, want.Rounds, want.MaxBits)
		}
		if gk, wk := got.Board.Key(), want.Board.Key(); gk != wk {
			t.Fatalf("job %d (%s): board mismatch", i, j.p.Name())
		}
		if fmt.Sprint(got.WriterOrder()) != fmt.Sprint(want.WriterOrder()) {
			t.Fatalf("job %d (%s): write order mismatch", i, j.p.Name())
		}
	}
}

// TestRunnerShrinkGrow checks buffer management across size changes in
// both directions.
func TestRunnerShrinkGrow(t *testing.T) {
	runner := NewRunner()
	for _, n := range []int{50, 3, 80, 1, 17} {
		g := graph.Path(n)
		got := runner.Run(buildforest.Protocol{}, g, adversary.MinID{}, Options{})
		if got.Status != core.Success {
			t.Fatalf("n=%d: %v (%v)", n, got.Status, got.Err)
		}
		if len(got.Writes) != n {
			t.Fatalf("n=%d: %d writes", n, len(got.Writes))
		}
	}
}

// BenchmarkRunnerReuse quantifies what the reusable Runner saves over the
// allocating Run on the campaign hot loop. BuildForest composes cheap
// messages, so the engine's own per-run allocations (state, views, board,
// candidates, writes) dominate — exactly what the Runner amortizes.
func BenchmarkRunnerReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomTree(64, rng)
	p := buildforest.Protocol{}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := Run(p, g, adversary.MinID{}, Options{}); res.Status != core.Success {
				b.Fatal(res.Status)
			}
		}
	})
	b.Run("runner", func(b *testing.B) {
		b.ReportAllocs()
		runner := NewRunner()
		for i := 0; i < b.N; i++ {
			if res := runner.Run(p, g, adversary.MinID{}, Options{}); res.Status != core.Success {
				b.Fatal(res.Status)
			}
		}
	})
}
