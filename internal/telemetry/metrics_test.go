package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden pins the Prometheus text rendering byte for byte:
// HELP/TYPE lines, deterministic family and label ordering, histogram
// bucket cumulativity with an explicit +Inf bound, and label escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("wb_test_events_total", "Events observed.").Add(42)
	rv := r.CounterVec("wb_test_requests_total", "Requests by route.", "route")
	rv.With("GET /api/v1/reports").Add(3)
	rv.With("GET /api/v1/diff").Add(7)
	rv.With(`odd"route\with` + "\n").Inc()
	r.Gauge("wb_test_in_flight", "In-flight requests.").Set(2)
	h := r.Histogram("wb_test_seconds", "Latency in seconds.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	hv := r.HistogramVec("wb_test_sized_seconds", "Labeled latency.", []float64{0.5}, "op")
	hv.With("load").Observe(0.25)
	hv.With("save").Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/telemetry -update)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden (regenerate with -update if intended):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketing pins the le boundary rule: a value equal to a
// bound lands in that bound's bucket, values beyond every bound land in
// +Inf only.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wb_test_h", "h", []float64{1, 2})
	h.Observe(1) // exactly on the first bound
	h.Observe(2) // exactly on the second
	h.Observe(3) // beyond all bounds
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`wb_test_h_bucket{le="1"} 1`,
		`wb_test_h_bucket{le="2"} 2`,
		`wb_test_h_bucket{le="+Inf"} 3`,
		`wb_test_h_sum 6`,
		`wb_test_h_count 3`,
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

// TestNilInstrumentsAreInert pins the Nop contract: every recording and
// reading method on nil instruments and nil groups is a no-op.
func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter holds a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	_ = g.Value()
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram holds observations")
	}
	Nop.HTTP.Request("GET /x", 0.1)
	Nop.HTTP.InFlightAdd(1)
	if got := Nop.HTTP.RequestCounts(); len(got) != 0 {
		t.Errorf("Nop request counts = %v", got)
	}
	Nop.Engine.RunDone(10)
	Nop.Engine.ExhaustiveDone(1, 2, 3, 4)
	Nop.Campaign.WorkerBusy(1)
	Nop.Campaign.JobDone()
	Nop.Campaign.CellDone(0.5)
	if Nop.Campaign.EngineMetrics() != nil {
		t.Error("Nop campaign group leaks an engine group")
	}
	Nop.Store.Ingest()
	Nop.Store.GCRemoved(2)
	Nop.Jobs.Submitted()
	Nop.Jobs.Finished("done")
}

// TestCounterNeverDecreases pins that negative adds are discarded.
func TestCounterNeverDecreases(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d after negative add, want 5", c.Value())
	}
}

// TestRegistryReregistration pins idempotent registration: asking for the
// same family twice returns the same instrument, and a kind mismatch
// panics instead of silently splitting the series.
func TestRegistryReregistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("wb_test_x_total", "x")
	b := r.Counter("wb_test_x_total", "x")
	a.Add(2)
	if b.Value() != 2 {
		t.Error("re-registration returned a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("wb_test_x_total", "x")
}

// TestConcurrentRecording hammers every instrument kind from parallel
// goroutines; under -race this pins the atomic hot paths, and the exact
// totals pin that no increment is lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wb_test_c_total", "c")
	g := r.Gauge("wb_test_g", "g")
	h := r.Histogram("wb_test_h_seconds", "h", DefLatencyBounds)
	cv := r.CounterVec("wb_test_cv_total", "cv", "k")
	hv := r.HistogramVec("wb_test_hv_seconds", "hv", []float64{0.5}, "k")

	const goroutines, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%7) / 10)
				cv.With("a").Inc()
				cv.With("b").Add(2)
				hv.With("x").Observe(0.25)
			}
		}(w)
	}
	// One goroutine scrapes concurrently: exposition must never race with
	// recording even if the snapshot it renders is torn.
	stop := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WriteText(&b)
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrape.Wait()

	if got := c.Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := cv.Snapshot(); got["a"] != goroutines*iters || got["b"] != 2*goroutines*iters {
		t.Errorf("vec snapshot = %v", got)
	}
	if got := hv.With("x").Count(); got != goroutines*iters {
		t.Errorf("labeled histogram count = %d, want %d", got, goroutines*iters)
	}
}
