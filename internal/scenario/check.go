package scenario

// check.go: the static type checker. Every expression is int, bool or
// list; the only list value is the candidates variable, so list-typed
// expressions never nest (a ternary or function cannot produce one).
// Unknown identifiers get a "did you mean" suggestion over everything
// nameable at that point — mode variables, stdlib functions, user
// functions and parameters — via the same helper the registry uses for
// component names.

import (
	"sort"
	"strings"

	"repro/internal/suggest"
)

type typ int

const (
	tInt typ = iota
	tBool
	tList
)

func (t typ) String() string {
	switch t {
	case tInt:
		return "int"
	case tBool:
		return "bool"
	default:
		return "list"
	}
}

// builtin describes one stdlib function for the checker and the docs.
type builtin struct {
	sig        string // human-readable signature for errors and README
	chooseOnly bool   // reads candidates implicitly (unavailable to activation predicates)
}

// builtins is the fixed stdlib. min and max are special-cased in
// checkCall: they take either one list or ≥2 ints.
var builtins = map[string]builtin{
	"len":    {sig: "len(list) int"},
	"min":    {sig: "min(list) int | min(int, int, ...) int"},
	"max":    {sig: "max(list) int | max(int, int, ...) int"},
	"argmin": {sig: "argmin(list) int"},
	"argmax": {sig: "argmax(list) int"},
	"pick":   {sig: "pick(int) int", chooseOnly: true},
	"prefer": {sig: "prefer(int, ...) int", chooseOnly: true},
	"has":    {sig: "has(int) bool", chooseOnly: true},
	"mod":    {sig: "mod(int, int) int"},
	"powmod": {sig: "powmod(int, int, int) int"},
}

// modeVars returns the variable environment for a mode.
func modeVars(mode Mode) map[string]typ {
	if mode == ModeActivate {
		return map[string]typ{"id": tInt, "n": tInt, "degree": tInt, "boardlen": tInt}
	}
	return map[string]typ{"round": tInt, "boardlen": tInt, "lastwriter": tInt, "candidates": tList}
}

type checker struct {
	prog *Program
	vars map[string]typ
	defs map[string]*defNode
}

// check type-checks the whole program: all function signatures first (so
// functions may call themselves and each other), then each body, then
// the result expression against the mode's required type.
func check(prog *Program) *Error {
	c := &checker{prog: prog, vars: modeVars(prog.mode), defs: map[string]*defNode{}}
	for _, d := range prog.defs {
		if _, dup := c.defs[d.name]; dup {
			return errAt(prog.src, d.p, "function %s is defined twice", d.name)
		}
		if _, isB := builtins[d.name]; isB {
			return errAt(prog.src, d.p, "cannot redefine built-in function %s", d.name)
		}
		if _, isV := c.vars[d.name]; isV {
			return errAt(prog.src, d.p, "function name %s shadows a built-in variable", d.name)
		}
		seen := map[string]bool{}
		for _, param := range d.params {
			if seen[param] {
				return errAt(prog.src, d.p, "function %s repeats parameter %s", d.name, param)
			}
			seen[param] = true
			if _, isV := c.vars[param]; isV {
				return errAt(prog.src, d.p, "parameter %s shadows a built-in variable", param)
			}
			if _, isB := builtins[param]; isB {
				return errAt(prog.src, d.p, "parameter %s shadows a built-in function", param)
			}
		}
		c.defs[d.name] = d
	}
	for _, d := range prog.defs {
		params := map[string]typ{}
		for _, param := range d.params {
			params[param] = tInt
		}
		t, err := c.expr(d.body, params)
		if err != nil {
			return err
		}
		if t != tInt {
			return errAt(prog.src, d.body.pos(), "function %s must return int, not %s", d.name, t)
		}
	}
	want := tInt
	if prog.mode == ModeActivate {
		want = tBool
	}
	t, err := c.expr(prog.root, nil)
	if err != nil {
		return err
	}
	if t != want {
		return errAt(prog.src, prog.root.pos(), "the result expression must be %s, not %s", want, t)
	}
	return nil
}

// expr returns the type of n under the given parameter scope (nil at top
// level; a function body sees only its parameters and the mode globals).
func (c *checker) expr(n node, params map[string]typ) (typ, *Error) {
	switch n := n.(type) {
	case *intLit:
		return tInt, nil
	case *boolLit:
		return tBool, nil
	case *varRef:
		if t, ok := params[n.name]; ok {
			return t, nil
		}
		if t, ok := c.vars[n.name]; ok {
			return t, nil
		}
		if _, ok := builtins[n.name]; ok {
			return 0, errAt(c.prog.src, n.p, "%s is a function; call it with arguments", n.name)
		}
		if _, ok := c.defs[n.name]; ok {
			return 0, errAt(c.prog.src, n.p, "%s is a function; call it with arguments", n.name)
		}
		return 0, c.unknown(n.p, n.name, params)
	case *unaryNode:
		t, err := c.expr(n.x, params)
		if err != nil {
			return 0, err
		}
		if n.op == "-" {
			if t != tInt {
				return 0, errAt(c.prog.src, n.p, "unary - wants int, got %s", t)
			}
			return tInt, nil
		}
		if t != tBool {
			return 0, errAt(c.prog.src, n.p, "not wants bool, got %s", t)
		}
		return tBool, nil
	case *binaryNode:
		xt, err := c.expr(n.x, params)
		if err != nil {
			return 0, err
		}
		yt, err := c.expr(n.y, params)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case "+", "-", "*", "/", "%":
			if xt != tInt || yt != tInt {
				return 0, errAt(c.prog.src, n.p, "%s wants int operands, got %s and %s", n.op, xt, yt)
			}
			return tInt, nil
		case "and", "or":
			if xt != tBool || yt != tBool {
				return 0, errAt(c.prog.src, n.p, "%s wants bool operands, got %s and %s", n.op, xt, yt)
			}
			return tBool, nil
		case "==", "!=":
			if xt != yt || xt == tList {
				return 0, errAt(c.prog.src, n.p, "%s wants two ints or two bools, got %s and %s", n.op, xt, yt)
			}
			return tBool, nil
		default: // < <= > >=
			if xt != tInt || yt != tInt {
				return 0, errAt(c.prog.src, n.p, "%s wants int operands, got %s and %s", n.op, xt, yt)
			}
			return tBool, nil
		}
	case *ternaryNode:
		ct, err := c.expr(n.cond, params)
		if err != nil {
			return 0, err
		}
		if ct != tBool {
			return 0, errAt(c.prog.src, n.cond.pos(), "the ? condition must be bool, got %s", ct)
		}
		tt, err := c.expr(n.then, params)
		if err != nil {
			return 0, err
		}
		et, err := c.expr(n.else_, params)
		if err != nil {
			return 0, err
		}
		if tt != et || tt == tList {
			return 0, errAt(c.prog.src, n.p, "? branches must both be int or both bool, got %s and %s", tt, et)
		}
		return tt, nil
	case *indexNode:
		xt, err := c.expr(n.x, params)
		if err != nil {
			return 0, err
		}
		if xt != tList {
			return 0, errAt(c.prog.src, n.p, "only the candidates list can be indexed, got %s", xt)
		}
		it, err := c.expr(n.i, params)
		if err != nil {
			return 0, err
		}
		if it != tInt {
			return 0, errAt(c.prog.src, n.i.pos(), "index must be int, got %s", it)
		}
		return tInt, nil
	case *callNode:
		return c.checkCall(n, params)
	default:
		return 0, errAt(c.prog.src, n.pos(), "internal: unknown node")
	}
}

func (c *checker) checkCall(n *callNode, params map[string]typ) (typ, *Error) {
	if d, ok := c.defs[n.name]; ok {
		if len(n.args) != len(d.params) {
			return 0, errAt(c.prog.src, n.p, "%s takes %d argument(s), got %d", n.name, len(d.params), len(n.args))
		}
		for _, a := range n.args {
			t, err := c.expr(a, params)
			if err != nil {
				return 0, err
			}
			if t != tInt {
				return 0, errAt(c.prog.src, a.pos(), "%s arguments must be int, got %s", n.name, t)
			}
		}
		return tInt, nil
	}
	b, ok := builtins[n.name]
	if !ok {
		if _, isVar := c.vars[n.name]; isVar {
			return 0, errAt(c.prog.src, n.p, "%s is a variable, not a function", n.name)
		}
		if _, isParam := params[n.name]; isParam {
			return 0, errAt(c.prog.src, n.p, "%s is a parameter, not a function", n.name)
		}
		return 0, c.unknown(n.p, n.name, params)
	}
	if b.chooseOnly && c.prog.mode != ModeChoose {
		return 0, errAt(c.prog.src, n.p, "%s reads the candidates list and is only available in writer-choice scripts", n.name)
	}
	types := make([]typ, len(n.args))
	for i, a := range n.args {
		t, err := c.expr(a, params)
		if err != nil {
			return 0, err
		}
		types[i] = t
	}
	ints := func(from int) *Error {
		for i := from; i < len(types); i++ {
			if types[i] != tInt {
				return errAt(c.prog.src, n.args[i].pos(), "%s wants int here, got %s (signature: %s)", n.name, types[i], b.sig)
			}
		}
		return nil
	}
	bad := func() *Error {
		return errAt(c.prog.src, n.p, "wrong arguments for %s (signature: %s)", n.name, b.sig)
	}
	switch n.name {
	case "len", "argmin", "argmax":
		if len(types) != 1 || types[0] != tList {
			return 0, bad()
		}
		return tInt, nil
	case "min", "max":
		if len(types) == 1 && types[0] == tList {
			return tInt, nil
		}
		if len(types) < 2 {
			return 0, bad()
		}
		if err := ints(0); err != nil {
			return 0, err
		}
		return tInt, nil
	case "pick":
		if len(types) != 1 {
			return 0, bad()
		}
		if err := ints(0); err != nil {
			return 0, err
		}
		return tInt, nil
	case "prefer":
		if len(types) < 1 {
			return 0, bad()
		}
		if err := ints(0); err != nil {
			return 0, err
		}
		return tInt, nil
	case "has":
		if len(types) != 1 {
			return 0, bad()
		}
		if err := ints(0); err != nil {
			return 0, err
		}
		return tBool, nil
	case "mod":
		if len(types) != 2 {
			return 0, bad()
		}
		if err := ints(0); err != nil {
			return 0, err
		}
		return tInt, nil
	default: // powmod
		if len(types) != 3 {
			return 0, bad()
		}
		if err := ints(0); err != nil {
			return 0, err
		}
		return tInt, nil
	}
}

// unknown builds the unknown-identifier error with a did-you-mean hint
// over every name in scope.
func (c *checker) unknown(pos int, name string, params map[string]typ) *Error {
	var known []string
	for v := range c.vars {
		known = append(known, v)
	}
	for b := range builtins {
		known = append(known, b)
	}
	for d := range c.defs {
		known = append(known, d)
	}
	for p := range params {
		known = append(known, p)
	}
	sort.Strings(known)
	if s := suggest.Closest(name, known); s != "" {
		return errAt(c.prog.src, pos, "unknown identifier %s (did you mean %s? known: %s)",
			name, s, strings.Join(known, ", "))
	}
	return errAt(c.prog.src, pos, "unknown identifier %s (known: %s)", name, strings.Join(known, ", "))
}

// Builtins returns the stdlib signatures, sorted — for help output.
func Builtins() []string {
	out := make([]string, 0, len(builtins))
	for _, b := range builtins {
		out = append(out, b.sig)
	}
	sort.Strings(out)
	return out
}
