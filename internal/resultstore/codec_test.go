package resultstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// goldenReports loads the campaign package's pinned report fixtures — the
// byte-exactness oracle for the columnar codec.
func goldenReports(t testing.TB) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "campaign", "testdata", "report_*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden reports found: %v", err)
	}
	out := map[string][]byte{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// TestCodecGoldenRoundTrip pins the tentpole guarantee: a report whose
// cells pass through the columnar codec renders byte-identically to the
// existing goldens — the packed format changes storage, never content.
func TestCodecGoldenRoundTrip(t *testing.T) {
	for name, golden := range goldenReports(t) {
		var rep campaign.Report
		if err := json.Unmarshal(golden, &rep); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		packed := encodeCells(rep.Cells)
		cells, err := decodeCells(packed)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		rep.Cells = cells
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Errorf("%s: report did not survive the columnar codec byte-identically", name)
		}
		if float64(len(packed)) > 0.5*float64(len(golden)) {
			t.Errorf("%s: packed cells are %d bytes for a %d-byte report; expected real compression", name, len(packed), len(golden))
		}
	}
}

// TestCodecNilVersusEmpty pins the JSON null-vs-[] distinction through
// the codec.
func TestCodecNilVersusEmpty(t *testing.T) {
	got, err := decodeCells(encodeCells(nil))
	if err != nil || got != nil {
		t.Fatalf("nil cells: got %v, %v", got, err)
	}
	got, err = decodeCells(encodeCells([]campaign.Cell{}))
	if err != nil || got == nil || len(got) != 0 {
		t.Fatalf("empty cells: got %#v, %v", got, err)
	}
}

// TestCodecRejectsCorruption drives the decoder through every truncation
// of a real block plus the classic corruptions; each must error, never
// panic, never succeed.
func TestCodecRejectsCorruption(t *testing.T) {
	var rep campaign.Report
	for _, golden := range goldenReports(t) {
		if err := json.Unmarshal(golden, &rep); err != nil {
			t.Fatal(err)
		}
		break
	}
	block := encodeCells(rep.Cells)
	for n := 0; n < len(block); n++ {
		if _, err := decodeCells(block[:n]); err == nil {
			t.Fatalf("decode accepted a block truncated to %d of %d bytes", n, len(block))
		}
	}
	if _, err := decodeCells(append(append([]byte{}, block...), 0)); err == nil {
		t.Error("decode accepted trailing garbage")
	}
	bad := append([]byte{}, block...)
	bad[0] ^= 0xff
	if _, err := decodeCells(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: got %v", err)
	}
	if _, err := decodeCells([]byte(cellsMagic + "\x02")); err == nil {
		t.Error("decode accepted an unknown cell-table kind")
	}
	if _, err := decodeCells(nil); err == nil {
		t.Error("decode accepted empty input")
	}
}

// FuzzDecodeCells asserts decode never panics, and that anything it does
// accept is internally consistent: re-encoding the result must produce a
// block that decodes to the same cells.
func FuzzDecodeCells(f *testing.F) {
	for _, golden := range goldenReports(f) {
		var rep campaign.Report
		if err := json.Unmarshal(golden, &rep); err != nil {
			f.Fatal(err)
		}
		f.Add(encodeCells(rep.Cells))
	}
	f.Add([]byte(cellsMagic + "\x00"))
	f.Add([]byte(cellsMagic + "\x01\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cells, err := decodeCells(data)
		if err != nil {
			return
		}
		again, err := decodeCells(encodeCells(cells))
		if err != nil {
			t.Fatalf("re-encoded block failed to decode: %v", err)
		}
		if !reflect.DeepEqual(cells, again) {
			t.Fatal("decode → encode → decode changed the cell table")
		}
	})
}

// TestStoredEnvelopeUsesColumnarFormat checks the physical layout: a
// fresh envelope carries format 2 with packed cells and no inline cell
// array.
func TestStoredEnvelopeUsesColumnarFormat(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep := runSmoke(t)
	e, err := st.Save(rep, "")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(st.Dir(), e.SpecHash, e.Label+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"cells_packed"`)) || !bytes.Contains(raw, []byte(`"format": 2`)) {
		t.Error("stored envelope is not in the columnar format")
	}
	if bytes.Contains(raw, []byte(`"cells": [`)) {
		t.Error("stored envelope still carries the inline cell array")
	}
}

// TestLegacyEnvelopeStillLoads pins backward compatibility: an envelope
// written before the columnar format (full JSON report, no format field)
// must list, resolve and load unchanged.
func TestLegacyEnvelopeStillLoads(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep := runSmoke(t)
	hash := SpecHash(rep.Spec)
	env := envelope{
		Entry:  Entry{SpecHash: hash, Label: "legacy", Seq: 1, Name: rep.Spec.Name, Jobs: rep.Jobs, Cells: len(rep.Cells), Mode: "sampled"},
		Report: rep,
	}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(st.Dir(), hash), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st.Dir(), hash, "legacy.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Label != "legacy" {
		t.Fatalf("legacy envelope missing from listing: %+v", entries)
	}
	loaded, _, err := st.Load(hash + "/legacy")
	if err != nil {
		t.Fatal(err)
	}
	var orig, back bytes.Buffer
	if err := rep.WriteJSON(&orig); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteJSON(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), back.Bytes()) {
		t.Error("legacy envelope did not load byte-identically")
	}
}
