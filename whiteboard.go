// Package whiteboard is the public API of the shared-whiteboard-models
// library, a full reproduction of Becker, Kosowski, Matamala, Nisse,
// Rapaport, Suchan and Todinca, "Allowing each node to communicate only
// once in a distributed system: shared whiteboard models" (SPAA 2012;
// Distributed Computing 28(3), 2015).
//
// The model: a distributed system is a graph whose nodes each know their
// own identifier (1..n), their neighbors' identifiers, and n. Nodes
// communicate by writing exactly one small message each on a shared
// whiteboard; an adversary picks the write order; the answer must be
// computable from the final board. Four models arise from two axes —
// whether all nodes activate immediately (SIM) and whether messages are
// frozen at activation (ASYNC) — and form the strict hierarchy
// PSIMASYNC ⊊ PSIMSYNC ⊊ PASYNC ⊆ PSYNC (Theorem 4).
//
// This package re-exports the model (core), the execution engines
// (sequential, exhaustive-adversary, and one-goroutine-per-node
// concurrent), the adversaries, the graph substrate, and constructors for
// every protocol in the paper:
//
//   - BuildForest — BUILD for forests, SIMASYNC[log n] (Section 3.1)
//   - BuildKDegenerate — BUILD for degeneracy-≤k graphs,
//     SIMASYNC[O(k² log n)] (Theorem 2)
//   - RootedMIS — maximal independent set containing x, SIMSYNC[log n]
//     (Theorem 5)
//   - TwoCliquesProtocol — two-cliques detection, SIMSYNC[log n] (§5.1)
//   - EOBBFS — BFS forests of even-odd-bipartite graphs, ASYNC[log n]
//     (Theorem 7)
//   - BipartiteBFS — BFS forests of bipartite graphs, ASYNC[log n]
//     (Corollary 4)
//   - BFS — BFS forests of arbitrary graphs, SYNC[log n] (Theorem 10)
//   - SubgraphPrefix — SUBGRAPH_f, SIMASYNC[f + log n] (Theorem 9)
//   - RandomizedTwoCliques — randomized SIMASYNC 2-CLIQUES (Open Problem 4)
//
// The lower-bound side of the paper is executable too: see
// internal/reductions (Figure 1/2 gadgets, the Theorem 3/6/8 whiteboard
// simulations) and internal/bounds (Lemma 3 counting, pigeonhole collision
// finder), surfaced through the cmd/ tools.
package whiteboard

import (
	"math/big"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/protocols/bfs"
	"repro/internal/protocols/buildforest"
	"repro/internal/protocols/buildkdeg"
	"repro/internal/protocols/connectivity"
	"repro/internal/protocols/mis"
	"repro/internal/protocols/randcliques"
	"repro/internal/protocols/subgraphf"
	"repro/internal/protocols/twocliques"
)

// Model is one of the four synchronization models of Table 1.
type Model = core.Model

// The four models, in increasing synchronization power along the lattice.
const (
	SimAsync = core.SimAsync
	SimSync  = core.SimSync
	Async    = core.Async
	Sync     = core.Sync
)

// Core model types.
type (
	// Protocol is the algorithm run at every node plus the output decoder.
	Protocol = core.Protocol
	// Board is the shared whiteboard.
	Board = core.Board
	// Message is one whiteboard entry.
	Message = core.Message
	// NodeView is a node's a-priori knowledge.
	NodeView = core.NodeView
	// Result describes a finished run.
	Result = core.Result
	// Status classifies run outcomes.
	Status = core.Status
	// WriteEvent records one whiteboard append.
	WriteEvent = core.WriteEvent
)

// Run outcome statuses.
const (
	Success  = core.Success
	Deadlock = core.Deadlock
	Failed   = core.Failed
)

// Graph is a simple undirected graph on nodes 1..n.
type Graph = graph.Graph

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// GraphFromEdges builds a graph from an edge list.
func GraphFromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// Adversary chooses the next writer each round.
type Adversary = adversary.Adversary

// Adversary constructors.
var (
	// MinIDAdversary always writes the smallest eligible identifier.
	MinIDAdversary Adversary = adversary.MinID{}
	// MaxIDAdversary always writes the largest eligible identifier.
	MaxIDAdversary Adversary = adversary.MaxID{}
	// RotorAdversary cycles deterministically through candidates.
	RotorAdversary Adversary = adversary.Rotor{}
)

// RandomAdversary returns a seeded uniformly random adversary.
func RandomAdversary(seed int64) Adversary { return adversary.NewRandom(seed) }

// StubbornAdversary delays victim as long as any other candidate exists.
func StubbornAdversary(victim int, inner Adversary) Adversary {
	return adversary.Stubborn{Victim: victim, Inner: inner}
}

// ScriptedAdversary replays a fixed total order over identifiers.
func ScriptedAdversary(order []int) Adversary { return adversary.NewScripted(order) }

// Options tunes a run; the zero value is ready to use.
type Options = engine.Options

// ForceModel returns Options that run a protocol under a different model's
// semantics than it was designed for (how the paper's separations are
// demonstrated operationally).
func ForceModel(m Model) Options { return Options{Model: engine.ModelPtr(m)} }

// Run executes p on g under adv with the deterministic sequential engine.
func Run(p Protocol, g *Graph, adv Adversary, opts Options) *Result {
	return engine.Run(p, g, adv, opts)
}

// RunConcurrent executes p with one goroutine per node; same schedule and
// result as Run under the same adversary, with parallel evaluation.
func RunConcurrent(p Protocol, g *Graph, adv Adversary, opts Options) *Result {
	return engine.RunConcurrent(p, g, adv, opts)
}

// RunAll enumerates every adversarial schedule (small inputs only) and
// calls check on each terminal result; it returns the number of schedules
// explored. The worst-case adversary, made literal.
func RunAll(p Protocol, g *Graph, opts Options, maxSteps int,
	check func(res *Result, order []int) error) (int, error) {
	stats, err := engine.RunAll(p, g, opts, maxSteps, check)
	return stats.Schedules, err
}

// RunAllMemo enumerates every adversarial schedule like RunAll but
// collapses write orders that reach identical (board, node-state,
// pending-message) configurations, visiting each configuration class once
// with its exact schedule multiplicity. Tallies summed over multiplicities
// are bit-for-bit what RunAll produces, at a fraction of the simulated
// writes on protocols whose message contents coincide across writers.
func RunAllMemo(p Protocol, g *Graph, opts Options, maxSteps int,
	visit func(res *Result, mult *big.Int) error) (engine.MemoStats, error) {
	return engine.RunAllMemo(p, g, opts, maxSteps, visit)
}

// BuildForest returns the SIMASYNC[log n] BUILD protocol for forests.
// Its output type is ForestReconstruction.
func BuildForest() Protocol { return buildforest.Protocol{} }

// ForestReconstruction is BuildForest's output.
type ForestReconstruction = buildforest.Decoded

// BuildKDegenerate returns the SIMASYNC[O(k² log n)] BUILD protocol for
// graphs of degeneracy at most k. Its output type is GraphReconstruction.
func BuildKDegenerate(k int) Protocol { return buildkdeg.Protocol{K: k} }

// GraphReconstruction is BuildKDegenerate's output.
type GraphReconstruction = buildkdeg.Decoded

// BuildSplitDegenerate returns the two-sided BUILD protocol (the extension
// the paper sketches after Theorem 2): same messages and budget as
// BuildKDegenerate(k), but the decoder also eliminates nodes of degree
// ≥ |R|−k−1 among the remaining nodes by decoding the complement of their
// neighborhood — reconstructing complete graphs, complements of
// k-degenerate graphs, split graphs and joins.
func BuildSplitDegenerate(k int) Protocol { return buildkdeg.Protocol{K: k, Split: true} }

// RootedMIS returns the SIMSYNC[log n] protocol computing a maximal
// independent set containing root. Its output is a sorted []int.
func RootedMIS(root int) Protocol { return mis.Protocol{Root: root} }

// TwoCliquesProtocol returns the SIMSYNC[log n] 2-CLIQUES protocol for
// (n−1)-regular 2n-node inputs. Its output type is TwoCliquesAnswer.
func TwoCliquesProtocol() Protocol { return twocliques.Protocol{} }

// TwoCliquesAnswer is TwoCliquesProtocol's output.
type TwoCliquesAnswer = twocliques.Output

// BFS returns the SYNC[log n] BFS-forest protocol for arbitrary graphs.
// Its output type is BFSForest.
func BFS() Protocol { return bfs.New(bfs.General) }

// CachedBFS is BFS with the incremental board-parse cache enabled:
// observationally identical, but each node's activation check costs O(new
// messages) instead of O(board) — use it for large runs (the ablation in
// internal/protocols/bfs shows 30–110× at n=64..256).
func CachedBFS() Protocol { return bfs.NewCached(bfs.General) }

// EOBBFS returns the ASYNC[log n] BFS-forest protocol for even-odd-
// bipartite graphs, rejecting invalid inputs.
func EOBBFS() Protocol { return bfs.New(bfs.EOB) }

// BipartiteBFS returns the ASYNC[log n] BFS-forest protocol for bipartite
// graphs (no validity detection; may deadlock on odd cycles).
func BipartiteBFS() Protocol { return bfs.New(bfs.Bipartite) }

// BFSForest is the output of the BFS protocols.
type BFSForest = bfs.Forest

// Connectivity returns the SYNC[log n] protocol answering CONNECTIVITY and
// SPANNING-TREE (the achievable side of Open Problem 2) on top of the
// Theorem 10 BFS machinery. Its output type is ConnectivityAnswer.
func Connectivity() Protocol { return connectivity.New(true) }

// ConnectivityAnswer is Connectivity's output.
type ConnectivityAnswer = connectivity.Answer

// SubgraphPrefix returns the SIMASYNC[f(n)+log n] SUBGRAPH_f protocol; its
// output is the *Graph containing exactly the edges among {v1..v_f(n)}.
func SubgraphPrefix(f func(n int) int, label string) Protocol {
	return subgraphf.Protocol{F: f, Label: label}
}

// RandomizedTwoCliques returns the randomized SIMASYNC 2-CLIQUES protocol
// with B-bit fingerprints and the given shared-randomness seed.
func RandomizedTwoCliques(seed uint64, bits int) Protocol {
	return randcliques.Protocol{Seed: seed, Bits: bits}
}
