// Package reductions makes the paper's lower-bound proofs executable.
//
// Theorems 3, 6 and 8 all follow one scheme: if problem P had a
// small-message protocol, then BUILD (full graph reconstruction) would have
// one too, contradicting the Lemma 3 counting bound. The scheme rests on
// gadget constructions — Figure 1's triangle gadget and Figure 2's
// EOB-BFS gadget — plus a whiteboard simulation argument. This package
// implements the gadgets with machine-checked defining properties, and the
// simulations as real protocols (TrianglePrime, MISPrime, EOBPrime) that
// can be run through the engine with any suitable inner protocol plugged
// in. Oracle inner protocols with Θ(n)-bit messages (package file
// oracles.go) demonstrate the transformations end to end; the counting
// side lives in internal/bounds.
package reductions

import (
	"fmt"

	"repro/internal/graph"
)

// TriangleGadget builds G'_{s,t} of Figure 1: the input graph plus one
// extra node n+1 adjacent to exactly v_s and v_t. If the input is
// triangle-free (in particular bipartite), G'_{s,t} contains a triangle iff
// {v_s, v_t} is an edge.
func TriangleGadget(g *graph.Graph, s, t int) *graph.Graph {
	n := g.N()
	out := graph.New(n + 1)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	out.AddEdge(s, n+1)
	out.AddEdge(t, n+1)
	return out
}

// VerifyTriangleGadget checks the Figure 1 property on a triangle-free
// input: for every pair s < t, G'_{s,t} has a triangle iff {s,t} ∈ E.
func VerifyTriangleGadget(g *graph.Graph) error {
	if graph.HasTriangle(g) {
		return fmt.Errorf("reductions: input graph must be triangle-free")
	}
	for s := 1; s <= g.N(); s++ {
		for t := s + 1; t <= g.N(); t++ {
			got := graph.HasTriangle(TriangleGadget(g, s, t))
			want := g.HasEdge(s, t)
			if got != want {
				return fmt.Errorf("reductions: gadget property fails at {%d,%d}: triangle=%v edge=%v",
					s, t, got, want)
			}
		}
	}
	return nil
}

// MISGadget builds G^(x)_{i,j} of Theorem 6: the input graph plus one extra
// node x = n+1 adjacent to every node except v_i and v_j. If {v_i,v_j} ∉ E,
// the unique inclusion-maximal independent set containing x is {x, v_i,
// v_j}; otherwise there are two, {x, v_i} and {x, v_j}.
func MISGadget(g *graph.Graph, i, j int) *graph.Graph {
	n := g.N()
	out := graph.New(n + 1)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	for v := 1; v <= n; v++ {
		if v != i && v != j {
			out.AddEdge(v, n+1)
		}
	}
	return out
}

// VerifyMISGadget checks the Theorem 6 property for every pair: a maximal
// independent set of G^(x)_{i,j} containing x contains both v_i and v_j iff
// {v_i,v_j} ∉ E.
func VerifyMISGadget(g *graph.Graph) error {
	n := g.N()
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			gad := MISGadget(g, i, j)
			x := n + 1
			// Any MIS containing x: x dominates V∖{i,j}, so the set is
			// {x} ∪ S with S ⊆ {v_i,v_j} independent and maximal.
			both := []int{i, j, x}
			if g.HasEdge(i, j) {
				if graph.IsIndependentSet(gad, both) {
					return fmt.Errorf("reductions: {x,%d,%d} independent despite edge", i, j)
				}
				if !graph.IsMaximalIndependentSet(gad, []int{i, x}) ||
					!graph.IsMaximalIndependentSet(gad, []int{j, x}) {
					return fmt.Errorf("reductions: expected two maximal sets at {%d,%d}", i, j)
				}
			} else {
				if !graph.IsMaximalIndependentSet(gad, both) {
					return fmt.Errorf("reductions: {x,%d,%d} not maximal without edge", i, j)
				}
				if graph.IsMaximalIndependentSet(gad, []int{i, x}) {
					return fmt.Errorf("reductions: {x,%d} wrongly maximal at {%d,%d}", i, i, j)
				}
			}
		}
	}
	return nil
}

// EOBGadgetInput describes the Theorem 8 setting: an even-odd-bipartite
// graph G on node set {v_2, ..., v_n} with n odd. We represent it as a
// graph H on m = n−1 nodes 1..m; node k of H plays v_{k+1} (the parity flip
// preserves even-odd-bipartiteness).
type EOBGadgetInput struct {
	H *graph.Graph // m = n-1 nodes; EOB with respect to its own labels
	N int          // the paper's n = m+1 (odd)
}

// NewEOBGadgetInput validates and wraps H.
func NewEOBGadgetInput(h *graph.Graph) (EOBGadgetInput, error) {
	if h.N()%2 != 0 {
		return EOBGadgetInput{}, fmt.Errorf("reductions: H must have an even node count (paper's n odd), got %d", h.N())
	}
	if !graph.IsEvenOddBipartite(h) {
		return EOBGadgetInput{}, fmt.Errorf("reductions: H must be even-odd-bipartite")
	}
	return EOBGadgetInput{H: h, N: h.N() + 1}, nil
}

// Gadget builds G_i of Figure 2 for odd i (3 ≤ i ≤ n), a graph on 2n−1
// nodes: G's edges (shifted up by one), plus
//
//	v_1      – v_{i+n−2}
//	v_j      – v_{j+n−2}   for every odd  j, 3 ≤ j ≤ n
//	v_j      – v_{j+n}     for every even j, 2 ≤ j ≤ n−1
//
// The construction keeps the graph even-odd-bipartite, and node v_j (j
// even) lies in layer 3 of the BFS tree rooted at v_1 iff {v_i, v_j} ∈ E.
func (in EOBGadgetInput) Gadget(i int) *graph.Graph {
	n := in.N
	if i < 3 || i > n || i%2 == 0 {
		panic(fmt.Sprintf("reductions: gadget index i=%d must be odd in 3..%d", i, n))
	}
	g := graph.New(2*n - 1)
	for _, e := range in.H.Edges() {
		g.AddEdge(e[0]+1, e[1]+1) // H node k plays v_{k+1}
	}
	g.AddEdge(1, i+n-2)
	for j := 3; j <= n; j += 2 {
		g.AddEdge(j, j+n-2)
	}
	for j := 2; j <= n-1; j += 2 {
		g.AddEdge(j, j+n)
	}
	return g
}

// Verify checks the Figure 2 property for every odd i: G_i is even-odd-
// bipartite, and the distance-3 set from v_1 is exactly {v_j : {v_i,v_j} ∈
// E(G)} — equivalently {k+1 : k ∈ N_H(i−1)}.
func (in EOBGadgetInput) Verify() error {
	n := in.N
	for i := 3; i <= n; i += 2 {
		g := in.Gadget(i)
		if !graph.IsEvenOddBipartite(g) {
			return fmt.Errorf("reductions: G_%d is not even-odd-bipartite", i)
		}
		dist := graph.Distances(g, 1)
		for j := 2; j <= n; j++ {
			want := in.H.HasEdge(i-1, j-1) // v_i–v_j in paper labels
			got := dist[j] == 3
			if got != want {
				return fmt.Errorf("reductions: G_%d: v_%d at distance %d, edge {v_%d,v_%d}=%v",
					i, j, dist[j], i, j, want)
			}
		}
	}
	return nil
}
