// Package scenario is the sandboxed adversary/scenario DSL: a small,
// deterministic expression language that compiles to the engine's
// adversary interface (and to activation predicates for protocol
// variants) so a campaign spec can carry its own schedule logic without a
// Go change behind the registry.
//
// A script is zero or more function definitions followed by one result
// expression:
//
//	def unseen(x) = x != lastwriter;
//	unseen(max(candidates)) ? max(candidates) : min(candidates)
//
// Scripts are pure functions of their inputs — for writer choice,
// (round, candidates, board-derived accessors); for activation
// predicates, (id, n, degree, boardlen) — with a fixed stdlib
// (arithmetic, comparisons, min/max/argmax, candidate indexing, modular
// arithmetic) and no I/O, randomness or time, so every run is exactly
// reproducible and coordinate-derived seeds stay meaningful. The
// pipeline is lexer → parser → typed AST → bounded evaluator: parse and
// type errors carry byte-precise positions (and "did you mean"
// suggestions for stdlib identifiers), and evaluation is capped by hard
// step and recursion budgets per Choose call, so a runaway script fails
// the run like an exhausted max_steps budget instead of hanging it.
//
// Because the script source rides inside the campaign spec (the
// "script:<expr>" adversary name or the spec's inline "script" field),
// it participates in the normalized spec hash: stored results remain
// content-addressed, and changing one token of a script changes the
// hash.
package scenario

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Budgets. Compilation rejects sources over MaxSourceBytes, scripts with
// more than MaxNodes AST nodes, and nesting beyond MaxParseDepth; each
// evaluation (one Choose call, one activation test) spends at most
// MaxEvalSteps node visits and MaxCallDepth nested user-function calls.
// Values are 64-bit integers and booleans only, so the step budget also
// bounds memory.
const (
	MaxSourceBytes = 4096
	MaxNodes       = 2048
	MaxParseDepth  = 64
	MaxEvalSteps   = 100_000
	MaxCallDepth   = 100
)

// Mode selects the variable environment a script compiles against.
type Mode int

const (
	// ModeChoose scripts pick each round's writer: they see round,
	// boardlen, lastwriter and the candidates list, and must evaluate to
	// an int that is one of the candidates.
	ModeChoose Mode = iota
	// ModeActivate scripts gate a node's activation: they see id, n,
	// degree and boardlen, and must evaluate to a bool.
	ModeActivate
)

// Error is a compile- or eval-time script failure carrying the byte
// offset it occurred at, so a bad script is fixable from the message
// alone ("script:1:17: unknown identifier ...").
type Error struct {
	Src string // the script source
	Pos int    // byte offset into Src (clamped to len(Src))
	Msg string
}

func (e *Error) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Src); i++ {
		if e.Src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("script:%d:%d: %s", line, col, e.Msg)
}

// errAt builds a positioned Error.
func errAt(src string, pos int, format string, args ...any) *Error {
	if pos > len(src) {
		pos = len(src)
	}
	return &Error{Src: src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Program is a compiled script: the typed AST plus the mode it was
// checked against. Programs are immutable and safe for concurrent use;
// each evaluation carries its own budget.
type Program struct {
	src  string
	mode Mode
	defs []*defNode
	root node
}

// Source returns the original script text — the string that participates
// in the spec hash.
func (p *Program) Source() string { return p.src }

// Mode returns the environment the program was compiled against.
func (p *Program) Mode() Mode { return p.mode }

// String returns the canonical printed form of the program: a fixpoint
// of parse∘print (printing the result of parsing it reproduces it byte
// for byte).
func (p *Program) String() string {
	var sb strings.Builder
	for _, d := range p.defs {
		sb.WriteString("def ")
		sb.WriteString(d.name)
		sb.WriteByte('(')
		for i, param := range d.params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(param)
		}
		sb.WriteString(") = ")
		printNode(&sb, d.body)
		sb.WriteString("; ")
	}
	printNode(&sb, p.root)
	return sb.String()
}

// Compile runs the full pipeline — lex, parse, type check — for the
// given mode. The returned error is a *Error with a position for any
// script defect.
func Compile(src string, mode Mode) (*Program, error) {
	metricsCompile()
	if len(src) > MaxSourceBytes {
		return nil, errAt(src, MaxSourceBytes, "script is %d bytes; the limit is %d", len(src), MaxSourceBytes)
	}
	if strings.TrimSpace(src) == "" {
		return nil, errAt(src, 0, "empty script")
	}
	p := &parser{src: src}
	p.toks, p.lexErr = lex(src)
	if p.lexErr != nil {
		return nil, p.lexErr
	}
	defs, root, err := p.parseScript()
	if err != nil {
		return nil, err
	}
	prog := &Program{src: src, mode: mode, defs: defs, root: root}
	if err := check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// CompileChoose compiles a writer-choice script (the "script:<expr>"
// adversary): the result type must be int.
func CompileChoose(src string) (*Program, error) { return Compile(src, ModeChoose) }

// CompileActivate compiles an activation predicate (the "gate:"
// protocol wrapper): the result type must be bool.
func CompileActivate(src string) (*Program, error) { return Compile(src, ModeActivate) }

// --- metrics ---

// metrics is the process-global scenario instrument group, installed by
// whichever binary owns a telemetry registry (wbserve, wbcampaign).
// Atomic because compiles and evals race server request handlers.
var metrics atomic.Pointer[telemetry.ScenarioMetrics]

// SetMetrics installs the wb_scenario_* instrument group; nil disables
// recording (the default).
func SetMetrics(m *telemetry.ScenarioMetrics) { metrics.Store(m) }

func metricsCompile() { metrics.Load().CompileDone() }

func metricsEvalSteps(n int) { metrics.Load().EvalSteps(int64(n)) }
