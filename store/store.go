// Package store is the public SDK over the persistent campaign result
// store: content-addressed storage of reports by normalized-spec hash and
// label, cross-run diffing, and garbage collection. It is the stable
// facade over repro/internal/resultstore; `wbcampaign run -store`, the
// wbserve HTTP surface and library consumers share this one API.
//
// A Store is a plain directory of JSON envelopes
// (<dir>/<spec-hash>/<label>.json), safe to inspect, sync and commit.
// Stored runs are immutable; saves land atomically, so readers are safe
// against concurrent writers. Inside an envelope the per-cell results are
// packed in a compact varint-columnar blob, and listings are served from
// a persistent entry index (<dir>/index.json) — both internal formats
// behind the unchanged JSON wire surface: every load decodes to the
// exact report that was saved, and a stale or corrupt index is rebuilt
// from the envelopes. Export/Import move whole stores as portable
// JSON-lines archives.
package store

import (
	"repro/campaign"
	internal "repro/internal/resultstore"
)

// Store is a directory of stored campaign runs. All methods of the
// underlying store — List, Save, Load, Resolve, GetEntry, LoadEntry,
// LoadSpec, LatestPair, Stat, GC, Export, Import — are part of the
// public surface.
type Store = internal.Store

// Entry identifies one stored run: spec hash, label, save sequence and
// listing metadata.
type Entry = internal.Entry

// Stats describes a store's size for health and metrics reporting.
type Stats = internal.Stats

// GCResult describes what a garbage-collection pass removed and kept.
type GCResult = internal.GCResult

// ImportResult tallies an Import pass: runs added and runs skipped
// because their (spec, label) already existed in the destination.
type ImportResult = internal.ImportResult

// Diff is the cell-by-cell comparison of two stored reports, with text
// and JSON renderings.
type Diff = internal.Diff

// CellDelta is one differing cell of a Diff.
type CellDelta = internal.CellDelta

// FieldDelta is one differing field of a cell.
type FieldDelta = internal.FieldDelta

// Sentinel errors, matchable with errors.Is.
var (
	// ErrNotFound reports that no stored run matches a lookup or ref.
	ErrNotFound = internal.ErrNotFound
	// ErrNeedTwoRuns reports that a spec has fewer than two stored runs,
	// so there is nothing to diff — a state, not a failure.
	ErrNeedTwoRuns = internal.ErrNeedTwoRuns
	// ErrLabelTaken reports a save under an existing label.
	ErrLabelTaken = internal.ErrLabelTaken
	// ErrBadLabel reports a label that cannot name a stored run.
	ErrBadLabel = internal.ErrBadLabel
	// ErrLabeledRuns reports a GC pass that would remove explicitly
	// labeled runs without force.
	ErrLabeledRuns = internal.ErrLabeledRuns
)

// Open returns a Store rooted at dir, creating it if necessary.
func Open(dir string) (*Store, error) { return internal.Open(dir) }

// CheckLabel reports whether a caller-chosen label could name a stored
// run (failures wrap ErrBadLabel) — useful for rejecting a bad label
// before a long sweep runs, the way the HTTP job API does at submission.
// The auto-assigned "run-NNN" namespace is reserved: leave labels empty
// to use it.
func CheckLabel(label string) error { return internal.CheckLabel(label) }

// AutoLabel reports whether label is a store-assigned sequence label
// ("run-001") rather than one a caller chose. GC treats caller-chosen
// labels as pinned.
func AutoLabel(label string) bool { return internal.AutoLabel(label) }

// SpecHash returns the content address of a campaign spec: the first 12
// hex digits of the SHA-256 of its normalized canonical JSON.
func SpecHash(spec campaign.Spec) string { return internal.SpecHash(spec) }

// DiffReports compares two reports cell by cell.
func DiffReports(old, new *campaign.Report) *Diff { return internal.DiffReports(old, new) }
