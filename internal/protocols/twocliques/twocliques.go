// Package twocliques implements the Section 5.1 protocol: deciding, in
// SIMSYNC[log n], whether an (n−1)-regular 2n-node graph is the disjoint
// union of two complete graphs on n nodes.
//
// The first node chosen writes (ID, 0). Every later node v looks at S_v,
// its neighbors that have already written: if S_v is empty it writes
// (ID, 1); if all of S_v announced the same clique c it writes (ID, c); and
// otherwise it writes "no".
//
// One fix over the paper's prose (documented in DESIGN.md): the output
// cannot be "two cliques iff no 'no' appears". Under an adversarial
// schedule a no-instance can avoid every "no" — e.g. rewire one edge of
// each clique into a cross matching and schedule writes along the rewired
// edges, which floods both sides with class 0. What the absence of "no"
// does certify is that there is no edge between the final 0-class and
// 1-class; combined with the (n−1)-regularity promise, *balanced* classes
// (n and n) force both classes to be cliques. The output function therefore
// answers yes iff no "no" appeared and the classes have exactly n nodes
// each. The exhaustive tests check this against every schedule.
package twocliques

import (
	"fmt"
	"sort"

	"repro/internal/bitio"
	"repro/internal/core"
)

// Output is the decision plus, for yes answers, the discovered partition.
type Output struct {
	TwoCliques bool
	Clique0    []int // sorted; nil when TwoCliques is false
	Clique1    []int
}

// Protocol is the SIMSYNC[log n] 2-CLIQUES protocol. The input promise is
// that the graph is (n−1)-regular on 2n nodes; on inputs outside the
// promise the answer is still "not two cliques" but the partition fields
// are meaningless.
type Protocol struct{}

// Name implements core.Protocol.
func (Protocol) Name() string { return "two-cliques" }

// Model implements core.Protocol.
func (Protocol) Model() core.Model { return core.SimSync }

// MaxMessageBits: identifier plus a 2-bit tag (clique 0, clique 1, "no").
func (Protocol) MaxMessageBits(n int) int { return bitio.WidthID(n) + 2 }

// Activate implements core.Protocol: simultaneous.
func (Protocol) Activate(core.NodeView, *core.Board) bool { return true }

const (
	tagClique0 = 0
	tagClique1 = 1
	tagNo      = 2
)

// Compose implements core.Protocol.
func (Protocol) Compose(v core.NodeView, b *core.Board) core.Message {
	tag := tagNo
	if b.Empty() {
		tag = tagClique0
	} else {
		sawClique := [2]bool{}
		sawNo := false
		empty := true
		for i := 0; i < b.Len(); i++ {
			id, t, err := parse(b.At(i), v.N)
			if err != nil {
				continue
			}
			if !v.HasNeighbor(id) {
				continue
			}
			empty = false
			if t == tagNo {
				sawNo = true
			} else {
				sawClique[t] = true
			}
		}
		switch {
		case empty:
			tag = tagClique1
		case sawNo || (sawClique[0] && sawClique[1]):
			tag = tagNo
		case sawClique[0]:
			tag = tagClique0
		default:
			tag = tagClique1
		}
	}
	var w bitio.Writer
	w.WriteUint(uint64(v.ID), bitio.WidthID(v.N))
	w.WriteUint(uint64(tag), 2)
	return core.Message{Data: w.Bytes(), Bits: w.Bits()}
}

func parse(m core.Message, n int) (id, tag int, err error) {
	r := bitio.NewReader(m.Data, m.Bits)
	rawID, err := r.ReadUint(bitio.WidthID(n))
	if err != nil {
		return 0, 0, err
	}
	rawTag, err := r.ReadUint(2)
	if err != nil {
		return 0, 0, err
	}
	return int(rawID), int(rawTag), nil
}

// Output implements core.Protocol: yes iff no "no" message appeared and the
// two announced classes are balanced (n nodes each on a 2n-node input).
func (Protocol) Output(n int, b *core.Board) (any, error) {
	var c0, c1 []int
	for i := 0; i < b.Len(); i++ {
		id, tag, err := parse(b.At(i), n)
		if err != nil {
			return nil, fmt.Errorf("twocliques: message %d: %w", i, err)
		}
		switch tag {
		case tagClique0:
			c0 = append(c0, id)
		case tagClique1:
			c1 = append(c1, id)
		default:
			return Output{TwoCliques: false}, nil
		}
	}
	if n%2 != 0 || len(c0) != n/2 || len(c1) != n/2 {
		return Output{TwoCliques: false}, nil
	}
	sort.Ints(c0)
	sort.Ints(c1)
	return Output{TwoCliques: true, Clique0: c0, Clique1: c1}, nil
}

var _ core.Protocol = Protocol{}
