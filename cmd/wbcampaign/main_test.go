package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/campaign"
	"repro/internal/server"
	"repro/store"
)

func smokeReport(t *testing.T, sizes ...int) *campaign.Report {
	t.Helper()
	if len(sizes) == 0 {
		sizes = []int{4, 5}
	}
	rep, err := campaign.Run(campaign.Spec{
		Name:        "cli-test",
		Protocols:   []string{"build-forest"},
		Graphs:      []string{"path"},
		Adversaries: []string{"min"},
		Sizes:       sizes,
	}, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunDiffNeedTwoRuns pins the CI-facing contract: a store holding
// fewer than two runs of a spec is a "nothing to compare yet" state —
// exit 0 with a clear message — not an opaque error.
func TestRunDiffNeedTwoRuns(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Empty store.
	var out bytes.Buffer
	code, err := runDiff(st, nil, false, &out)
	if err != nil || code != 0 {
		t.Fatalf("empty store: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "nothing to diff yet") || !strings.Contains(out.String(), "run -store") {
		t.Errorf("empty-store message not actionable:\n%s", out.String())
	}
	// One stored run.
	if _, err := st.Save(smokeReport(t), "solo"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = runDiff(st, nil, false, &out)
	if err != nil || code != 0 {
		t.Fatalf("single run: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "nothing to diff yet") {
		t.Errorf("single-run message:\n%s", out.String())
	}
	// Explicit refs that do not resolve remain operational errors.
	if _, err := runDiff(st, []string{"solo", "missing"}, false, &out); err == nil {
		t.Error("unknown explicit ref did not error")
	}
}

// TestRunDiffAgreeAndDiffer pins the exit codes once two runs exist.
func TestRunDiffAgreeAndDiffer(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(smokeReport(t), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(smokeReport(t), "b"); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runDiff(st, nil, false, &out)
	if err != nil || code != 0 {
		t.Fatalf("identical runs: code %d, err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "no differences") {
		t.Errorf("agreeing diff output:\n%s", out.String())
	}
	// A run of a different spec diffs with only-in deltas → exit 1.
	if _, err := st.Save(smokeReport(t, 4), "c"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = runDiff(st, []string{"a", "c"}, true, &out)
	if err != nil || code != 1 {
		t.Fatalf("differing runs: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), `"only_in"`) {
		t.Errorf("JSON diff output:\n%s", out.String())
	}
}

// TestPushReport publishes a report to an in-process wbserve and checks
// it landed, plus the error surface on rejection.
func TestPushReport(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Stores: []*store.Store{st}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep := smokeReport(t)
	entry, err := pushReport(ts.URL, rep, "pushed-v1")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Label != "pushed-v1" || entry.SpecHash != store.SpecHash(rep.Spec) {
		t.Errorf("pushed entry %+v", entry)
	}
	if _, err := st.GetEntry(entry.SpecHash, "pushed-v1"); err != nil {
		t.Errorf("pushed report not in served store: %v", err)
	}
	// Trailing slash in the base URL is tolerated; auto labels work.
	if entry, err = pushReport(ts.URL+"/", rep, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(entry.Label, "run-") {
		t.Errorf("auto label = %q", entry.Label)
	}
	// A duplicate label is refused by the server; the client surfaces it.
	if _, err := pushReport(ts.URL, rep, "pushed-v1"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate push: %v", err)
	}
}

// writeSpecFile materializes a spec as a JSON file for -spec runs.
func writeSpecFile(t *testing.T, spec campaign.Spec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSDKCLIHTTPEquivalence pins the PR's acceptance criterion: the same
// spec executed through the public Go SDK, through `wbcampaign run
// -store`, and through HTTP job submission (`run -remote`) produces
// byte-identical stored reports.
func TestSDKCLIHTTPEquivalence(t *testing.T) {
	spec := campaign.Spec{
		Name:        "equivalence",
		Protocols:   []string{"build-forest", "mis"},
		Graphs:      []string{"path"},
		Adversaries: []string{"min", "max"},
		Sizes:       []int{4, 5},
		Seeds:       2,
	}
	dir := t.TempDir()
	specFile := writeSpecFile(t, spec)

	// Route 1: the public SDK, straight into the store.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(spec, campaign.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(rep, "sdk"); err != nil {
		t.Fatal(err)
	}

	// Route 2: the CLI, run -store.
	runCmd([]string{"-spec", specFile, "-store", "-dir", dir, "-label", "cli", "-quiet"})

	// Route 3: HTTP job submission via run -remote against an in-process
	// wbserve over the same store.
	srv, err := server.New(server.Options{Stores: []*store.Store{st}, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	runCmd([]string{"-spec", specFile, "-remote", ts.URL, "-label", "http", "-quiet"})

	// All three landed under one spec hash; their reports render to the
	// same bytes, JSON and CSV alike.
	hash := store.SpecHash(spec)
	render := func(label, format string) string {
		t.Helper()
		entry, err := st.GetEntry(hash, label)
		if err != nil {
			t.Fatalf("%s run not stored: %v", label, err)
		}
		loaded, err := st.LoadEntry(entry)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := loaded.Render(&buf, format); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, format := range []string{"json", "csv"} {
		sdk, cli, http := render("sdk", format), render("cli", format), render("http", format)
		if sdk != cli {
			t.Errorf("%s: SDK and CLI reports differ", format)
		}
		if sdk != http {
			t.Errorf("%s: SDK and HTTP-job reports differ", format)
		}
	}
}

// TestFleetCLIEquivalence extends the equivalence pin to fleet mode: the
// same spec sharded across two in-process wbserve workers (via `run
// -workers URL,URL`) stores a report byte-identical to the SDK run, and
// -metrics-out captures the fabric telemetry for scripts to assert on.
func TestFleetCLIEquivalence(t *testing.T) {
	spec := campaign.Spec{
		Name:        "fleet-equivalence",
		Protocols:   []string{"build-forest", "mis"},
		Graphs:      []string{"path"},
		Adversaries: []string{"min", "max"},
		Sizes:       []int{4, 5},
		Seeds:       2,
	}
	dir := t.TempDir()
	specFile := writeSpecFile(t, spec)

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(spec, campaign.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(rep, "sdk"); err != nil {
		t.Fatal(err)
	}

	worker := func() string {
		wst, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Options{Stores: []*store.Store{wst}, JobWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts.URL
	}
	metricsFile := filepath.Join(t.TempDir(), "metrics.prom")
	runCmd([]string{"-spec", specFile, "-store", "-dir", dir, "-label", "fleet", "-quiet",
		"-workers", worker() + "," + worker(), "-shards", "3", "-metrics-out", metricsFile})

	hash := store.SpecHash(spec)
	render := func(label, format string) string {
		t.Helper()
		entry, err := st.GetEntry(hash, label)
		if err != nil {
			t.Fatalf("%s run not stored: %v", label, err)
		}
		loaded, err := st.LoadEntry(entry)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := loaded.Render(&buf, format); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, format := range []string{"json", "csv"} {
		if render("sdk", format) != render("fleet", format) {
			t.Errorf("%s: SDK and fleet reports differ", format)
		}
	}

	metrics, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatalf("-metrics-out wrote nothing: %v", err)
	}
	for _, family := range []string{"wb_fabric_shards_in_flight", "wb_fabric_resubmissions_total", "wb_fabric_workers"} {
		if !strings.Contains(string(metrics), family) {
			t.Errorf("metrics exposition lacks %s", family)
		}
	}
}

// TestParseWorkers pins the dual-mode flag: integers stay goroutine
// counts, URL lists select the fleet, and junk is rejected.
func TestParseWorkers(t *testing.T) {
	if urls, n, err := parseWorkers("4"); err != nil || n != 4 || urls != nil {
		t.Errorf("parseWorkers(4) = %v, %d, %v", urls, n, err)
	}
	if urls, n, err := parseWorkers("0"); err != nil || n != 0 || urls != nil {
		t.Errorf("parseWorkers(0) = %v, %d, %v", urls, n, err)
	}
	urls, n, err := parseWorkers("http://a:8080, http://b:8080")
	if err != nil || n != 0 || len(urls) != 2 || urls[0] != "http://a:8080" || urls[1] != "http://b:8080" {
		t.Errorf("parseWorkers(urls) = %v, %d, %v", urls, n, err)
	}
	for _, bad := range []string{"-2", "a:8080", "http://a:8080,nope", ","} {
		if _, _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}

// TestRunRemoteErrors pins the -remote error surface without exiting the
// process: rejected submissions and failed jobs surface as errors.
func TestRunRemoteErrors(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ro, err := server.New(server.Options{Stores: []*store.Store{st}, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ro.Handler())
	defer ts.Close()
	spec := campaign.Spec{Protocols: []string{"build-forest"}, Graphs: []string{"path"},
		Adversaries: []string{"min"}, Sizes: []int{4}}
	if err := runRemote(context.Background(), ts.URL, spec, "", true, "", "", ""); err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("read-only remote run: %v, want 403 error", err)
	}
	if err := runRemote(context.Background(), "http://127.0.0.1:1", spec, "", true, "", "", ""); err == nil {
		t.Error("unreachable remote did not error")
	}
}

// TestRemoteDownloadsReport pins that -remote with -out/-csv fetches the
// server-rendered report, byte-identical to a local run's rendering.
func TestRemoteDownloadsReport(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Stores: []*store.Store{st}, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := campaign.Spec{Name: "dl", Protocols: []string{"build-forest"},
		Graphs: []string{"path"}, Adversaries: []string{"min"}, Sizes: []int{4, 5}}
	outDir := t.TempDir()
	outJSON := filepath.Join(outDir, "rep.json")
	outCSV := filepath.Join(outDir, "rep.csv")
	if err := runRemote(context.Background(), ts.URL, spec, "dl", true, outJSON, outCSV, ""); err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(spec, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := want.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	gotCSV, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON.Bytes()) {
		t.Error("downloaded JSON differs from a local run's rendering")
	}
	if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
		t.Error("downloaded CSV differs from a local run's rendering")
	}
}

// TestGCCmd walks the gc subcommand happy path end to end over a real
// store directory.
func TestGCCmd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := smokeReport(t)
	for i := 0; i < 3; i++ {
		if _, err := st.Save(rep, ""); err != nil {
			t.Fatal(err)
		}
	}
	gcCmd([]string{"-dir", dir, "-keep", "1", "-quiet"})
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Label != "run-003" {
		t.Fatalf("after gc -keep 1: %+v, want only run-003", entries)
	}
}

// TestExportImportCmd drives the CLI pair end to end: export a populated
// store to an archive file, import it into a fresh directory, and check
// the destination serves the same reports byte-for-byte.
func TestExportImportCmd(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := store.Open(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	rep := smokeReport(t)
	if _, err := src.Save(rep, "tagged"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Save(rep, ""); err != nil {
		t.Fatal(err)
	}
	archive := filepath.Join(t.TempDir(), "archive.jsonl")
	exportCmd([]string{"-dir", srcDir, "-out", archive})
	data, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 2 {
		t.Fatalf("archive holds %d lines, want 2", lines)
	}
	importCmd([]string{"-dir", dstDir, archive})
	dst, err := store.Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := dst.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("destination lists %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		got, err := dst.LoadEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := rep.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := got.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: report changed crossing the CLI archive", e.Ref())
		}
	}
	// Idempotent: importing the same archive again adds nothing.
	importCmd([]string{"-dir", dstDir, archive})
	entries, err = dst.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("re-import grew the store to %d entries", len(entries))
	}
}

// TestRemoteStreamsThenFallsBack pins the two progress transports: a
// current server is followed over SSE, and a server without the events
// route (pre-realtime wbserve) degrades to status polling with the same
// stored result.
func TestRemoteStreamsThenFallsBack(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Stores: []*store.Store{st}, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var eventsHits atomic.Int64
	older := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// An older server has no events route at all.
		if strings.HasSuffix(r.URL.Path, "/events") {
			eventsHits.Add(1)
			http.NotFound(w, r)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(older)
	defer ts.Close()
	spec := campaign.Spec{Name: "fallback", Protocols: []string{"build-forest"},
		Graphs: []string{"path"}, Adversaries: []string{"min"}, Sizes: []int{4, 5}}
	if err := runRemote(context.Background(), ts.URL, spec, "polled", true, "", "", ""); err != nil {
		t.Fatalf("remote run against a server without SSE: %v", err)
	}
	if eventsHits.Load() == 0 {
		t.Error("the client never tried the events route before falling back")
	}
	if _, err := st.GetEntry(store.SpecHash(spec), "polled"); err != nil {
		t.Errorf("fallback run not stored: %v", err)
	}

	// Against the real handler, the stream path completes end to end too.
	full := httptest.NewServer(srv.Handler())
	defer full.Close()
	if err := runRemote(context.Background(), full.URL, spec, "streamed", true, "", "", ""); err != nil {
		t.Fatalf("remote run over SSE: %v", err)
	}
	if _, err := st.GetEntry(store.SpecHash(spec), "streamed"); err != nil {
		t.Errorf("streamed run not stored: %v", err)
	}
}

// TestRemoteInterruptCancelsJob is the regression for ^C abandoning the
// job server-side: when the run context is canceled mid-stream, the
// client POSTs /cancel and returns a non-nil (non-zero exit) error. The
// server here is a stub whose job never finishes — exactly the situation
// an interrupted poll loop used to leave burning.
func TestRemoteInterruptCancelsJob(t *testing.T) {
	var canceled atomic.Bool
	streaming := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"id":"job-7","state":"running","cells_total":2,"jobs_total":2}`)
	})
	mux.HandleFunc("GET /api/v1/campaigns/job-7/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, ": held open\n\n")
		w.(http.Flusher).Flush()
		close(streaming)
		<-r.Context().Done() // the job "runs" until the client goes away
	})
	mux.HandleFunc("GET /api/v1/campaigns/job-7", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"id":"job-7","state":"running","cells_total":2,"jobs_total":2}`)
	})
	mux.HandleFunc("POST /api/v1/campaigns/job-7/cancel", func(w http.ResponseWriter, r *http.Request) {
		canceled.Store(true)
		// The real server answers 202 Accepted (cancellation is async);
		// the client must treat any 2xx as the cancel having landed.
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"id":"job-7","state":"canceled"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-streaming // the moment the stream is live, deliver the "signal"
		cancel()
	}()
	spec := campaign.Spec{Protocols: []string{"build-forest"}, Graphs: []string{"path"},
		Adversaries: []string{"min"}, Sizes: []int{4}}
	err := runRemote(ctx, ts.URL, spec, "", true, "", "", "")
	if err == nil {
		t.Fatal("interrupted remote run returned nil; the CLI would exit 0")
	}
	if !strings.Contains(err.Error(), "canceled job job-7 server-side") {
		t.Errorf("error does not record the server-side cancel: %v", err)
	}
	if !canceled.Load() {
		t.Error("client never POSTed /cancel; the job would burn on server-side")
	}
}
