// wbhierarchy demonstrates Theorem 4's computing-power lattice with live
// runs: each strict separation is shown operationally (the protocol works
// in its model, and the same problem breaks one level down), together with
// Theorem 9's message-size orthogonality and the Open Problem 3 deadlock
// witness. Protocols, graphs and adversaries are resolved by name through
// internal/registry.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/protocols/bfs"
	"repro/internal/protocols/randcliques"
	"repro/internal/registry"
)

func main() {
	fmt.Println("Theorem 4 — the computing power lattice, demonstrated")
	fmt.Println("PSIMASYNC[f] ⊊ PSIMSYNC[f] ⊊ PASYNC[f] ⊆ PSYNC[f], orthogonal to message size")
	fmt.Println()

	separationMIS()
	separationEOBBFS()
	openProblem3()
	theorem9()
	openProblem4()
}

func separationMIS() {
	fmt.Println("── PSIMASYNC ⊊ PSIMSYNC (Theorems 5+6, witness: rooted MIS) ──")
	g := registry.MustGraph("path", registry.Params{N: 5}, nil)
	p := registry.MustProtocol("mis", registry.Params{K: 1, N: 5})

	res := engine.Run(p, g, registry.MustAdversary("min", registry.Params{}), engine.Options{})
	set := res.Output.([]int)
	fmt.Printf("  SIMSYNC native:   %v → MIS %v, valid=%v\n",
		res.Status, set, graph.IsMaximalIndependentSet(g, set))

	frozen := engine.Run(p, g, registry.MustAdversary("min", registry.Params{}),
		engine.Options{Model: engine.ModelPtr(core.SimAsync)})
	fset := frozen.Output.([]int)
	fmt.Printf("  SIMASYNC frozen:  %v → set %v, independent=%v (greedy rule broken without board feedback)\n",
		frozen.Status, fset, graph.IsIndependentSet(g, fset))

	// The theorem-level statement: no SIMASYNC[o(n)] protocol at all —
	// by reduction + counting (see wbtable2) and by pigeonhole collision
	// for any concrete sketch:
	col := bounds.FindCollision(bounds.Sketch{Seed: 5, B: 4},
		func(fn func(*graph.Graph) bool) { graph.AllGraphs(5, fn) },
		func(g *graph.Graph) string { return g.Key() })
	if col != nil {
		fmt.Printf("  pigeonhole:       4-bit SIMASYNC sketches collide: %v vs %v (identical boards)\n",
			col.A, col.B)
	}
	fmt.Println()
}

func separationEOBBFS() {
	fmt.Println("── PSIMSYNC ⊊ PASYNC (Theorems 7+8, witness: EOB-BFS) ──")
	rng := rand.New(rand.NewSource(3))
	g := registry.MustGraph("eob", registry.Params{N: 12, P: 0.35}, rng)
	res := engine.Run(registry.MustProtocol("eob-bfs", registry.Params{}), g,
		registry.MustAdversary("random", registry.Params{Seed: 7}), engine.Options{})
	f := res.Output.(bfs.Forest)
	ok := graph.ValidateBFSForest(g, f.Parent, f.Layer) == ""
	fmt.Printf("  ASYNC native:     %v on %v → canonical BFS forest=%v\n", res.Status, g, ok)
	fmt.Println("  SIMSYNC side:     no o(n) protocol exists — Figure 2 gadget + Lemma 3 counting")
	fmt.Printf("                    (2^%.0f EOB graphs on n=256 vs capacity %d bits at f=16)\n",
		bounds.Log2EOBGraphs(256), bounds.BoardCapacity(256, 16))
	fmt.Println()
}

func openProblem3() {
	fmt.Println("── PASYNC ⊆ PSYNC, strictness open (Open Problem 3) ──")
	g := registry.MustGraph("cycle-iso", registry.Params{N: 6}, nil) // C5 + isolated 6
	sync := engine.Run(registry.MustProtocol("bfs", registry.Params{}), g, registry.MustAdversary("min", registry.Params{}), engine.Options{})
	fmt.Printf("  SYNC native:      %v on C5+isolated (writes: %d/6)\n", sync.Status, len(sync.Writes))
	frozen := engine.Run(registry.MustProtocol("bfs", registry.Params{}), g, registry.MustAdversary("min", registry.Params{}),
		engine.Options{Model: engine.ModelPtr(core.Async)})
	fmt.Printf("  ASYNC frozen:     %v after %d writes — d0 frozen at 0 inflates the forward-edge\n",
		frozen.Status, len(frozen.Writes))
	fmt.Println("                    certificate, so the isolated node never roots (supports the conjecture)")
	fmt.Println()
}

func theorem9() {
	fmt.Println("── Theorem 9 — message size is orthogonal to synchronization ──")
	rng := rand.New(rand.NewSource(9))
	g := registry.MustGraph("gnp", registry.Params{N: 16, P: 0.5}, rng)
	// SUBGRAPH_f with f(n) = n/4: for this n=16 instance, the registry's
	// constant-prefix protocol with k = 4 is exactly that f.
	p := registry.MustProtocol("subgraph", registry.Params{K: g.N() / 4})
	res := engine.Run(p, g, registry.MustAdversary("max", registry.Params{}), engine.Options{})
	sub := res.Output.(*graph.Graph)
	fmt.Printf("  SUBGRAPH_{n/4} ∈ SIMASYNC[n/4+log n]: %v, recovered %d prefix edges at %d bits/message\n",
		res.Status, sub.M(), res.MaxBits)
	n := 1024
	fn := n / 4
	gBits := 16 // g(n) = o(f(n))
	// The family of Theorem 9: graphs on f(n) nodes padded with isolated
	// nodes; needs ~f(n)²/2 bits.
	needed := float64(fn*(fn-1)) / 2
	fmt.Printf("  SYNC[g] with g=%d bits: family needs 2^%.0f boards, capacity %d bits → impossible=%v\n",
		gBits, needed, bounds.BoardCapacity(n, gBits), bounds.Lemma3Violated(needed, n, gBits))
	fmt.Println("  ⇒ PSIMASYNC[f] ⊄ PSYNC[g] for g=o(f): more sync power cannot offset smaller messages")
	fmt.Println()
}

func openProblem4() {
	fmt.Println("── Open Problem 4 — randomized SIMASYNC protocols ──")
	yes := registry.MustGraph("two-cliques", registry.Params{N: 16}, nil)
	no := registry.MustGraph("swapped", registry.Params{N: 16}, nil)
	errs := 0
	trials := 500
	for s := 0; s < trials; s++ {
		p := registry.MustProtocol("rand-cliques:16", registry.Params{Seed: int64(uint64(s)*0x9E3779B9 + 1)})
		ry := engine.Run(p, yes, registry.MustAdversary("min", registry.Params{}), engine.Options{})
		rn := engine.Run(p, no, registry.MustAdversary("min", registry.Params{}), engine.Options{})
		if !ry.Output.(randcliques.Output).TwoCliques || rn.Output.(randcliques.Output).TwoCliques {
			errs++
		}
	}
	fmt.Printf("  randomized 2-CLIQUES in SIMASYNC[16 bits]: %d/%d errors over seed trials\n", errs, trials)
	fmt.Println("  (deterministic SIMASYNC cannot: 2-CLIQUES ⇒ CONNECTIVITY link, Open Problem 1)")
}
